//! The network simulator: routers + links + endpoints.
//!
//! [`NetworkSim`] visits each 1.2 GHz core-clock edge, steps every router
//! that has work (quiescent routers are *skipped* — bit-for-bit
//! equivalently — until a packet, credit, or wake tick reaches them), and
//! moves the router outputs around:
//!
//! * **Forwards** cross a 0.8 GHz link with three link-clocks of wire
//!   latency (§4.1) and enter the neighbour through the opposite input
//!   port; the next hop's route is computed on arrival.
//! * **Credits** return to the upstream router with the same wire latency.
//! * **Deliveries** are handed to the destination node's [`Endpoint`] at
//!   last-flit time.
//!
//! Endpoints generate traffic: each core cycle, every node's endpoint may
//! inject packets through its local input ports (cache, memory
//! controllers, I/O), bounded by real buffer space. The `workload` crate's
//! coherence generator is the production endpoint; tests use simpler ones.

use crate::fault::{retransmit_histogram, DeadLinks, FaultConfig};
use crate::routing::route_for;
use crate::shard::{replay_records, CycleEnv, MeasureRecord, OutEvent, Shard};
use crate::topology::NetTopology;
use arbitration::ports::InputPort;
use router::{CoherenceClass, IncomingPacket, Packet, Router, RouterConfig, VcId};
use simcore::stats::{Histogram, OnlineStats};
use simcore::Tick;

/// Result of an injection attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectionOutcome {
    /// The packet entered the router's input buffer.
    Accepted,
    /// The target virtual channel has no free buffer slot; try later.
    NoBufferSpace,
    /// Link deaths have disconnected the destination from this node: no
    /// route — minimal-adaptive or escape — survives the current
    /// [`DeadLinks`] mask. The packet never entered the network (it is
    /// not counted as injected); the endpoint must account for it rather
    /// than retry forever.
    Unreachable,
}

/// Per-node view handed to an [`Endpoint`] every cycle.
pub struct NodeCtx<'a> {
    pub(crate) router: &'a mut Router,
    pub(crate) topology: &'a NetTopology,
    pub(crate) node: u16,
    pub(crate) now: Tick,
    pub(crate) core_period: Tick,
    pub(crate) injected_packets: &'a mut u64,
    pub(crate) injected_flits: &'a mut u64,
    /// Link-death mask from the fault plane (the static empty mask when
    /// the fault plane is disabled); injection routes against it.
    pub(crate) dead: &'a DeadLinks,
    /// Set when an injection gave the router new work (idle-skip wake).
    pub(crate) woke: bool,
}

impl NodeCtx<'_> {
    /// This node's id.
    pub fn node(&self) -> u16 {
        self.node
    }

    /// Current simulation time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// The virtual channel an injected packet of `class` occupies at the
    /// source router: the class's adaptive channel for coherence traffic,
    /// the deadlock-free VC0 for the escape-only I/O classes, the special
    /// channel for specials.
    pub fn injection_vc(class: CoherenceClass) -> VcId {
        match class {
            CoherenceClass::Special => VcId::special(),
            CoherenceClass::ReadIo | CoherenceClass::WriteIo => {
                VcId::escape(class, router::EscapeVc::Vc0)
            }
            _ => VcId::adaptive(class),
        }
    }

    /// True when a packet of `class` could be injected through `input`
    /// right now.
    pub fn can_inject(&self, input: InputPort, class: CoherenceClass) -> bool {
        input.is_local() && self.router.free_space(input, Self::injection_vc(class)) > 0
    }

    /// Injects a packet through a local input port.
    ///
    /// # Panics
    ///
    /// Panics if `input` is a torus port (local injection only) or if the
    /// packet's source is not this node.
    pub fn inject(&mut self, input: InputPort, mut packet: Packet) -> InjectionOutcome {
        assert!(input.is_local(), "injection uses local ports only");
        assert_eq!(packet.src, self.node, "packet source must be this node");
        let vc = Self::injection_vc(packet.class);
        if self.router.free_space(input, vc) == 0 {
            return InjectionOutcome::NoBufferSpace;
        }
        // Route before committing: a destination cut off by link deaths
        // is refused at the source instead of entering the network only
        // to be dropped at a dead hop.
        let Some(route) = route_for(self.topology, self.dead, self.node, &packet) else {
            return InjectionOutcome::Unreachable;
        };
        packet.injected = self.now;
        self.woke = true;
        *self.injected_packets += 1;
        *self.injected_flits += packet.len() as u64;
        self.router.accept_packet(
            input,
            IncomingPacket {
                packet,
                route,
                vc,
                pin_time: self.now,
                in_flit_period: self.core_period,
            },
        );
        InjectionOutcome::Accepted
    }
}

/// Reported by an endpoint whose delivery just completed a closed-loop
/// transaction (the terminal reply of a request→reply flow drained).
///
/// The engine turns the completion into a per-transaction latency sample
/// — `now - issued` nanoseconds, reply-drain minus request-issue — and
/// accumulates it through the same canonical-order replay as the packet
/// latencies, so the statistic is bit-exact across idle-skip settings,
/// engines, and shard worker counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnCompletion {
    /// Tick at which the requester *issued* the original request (packet
    /// creation, before source queueing — the closed-loop round trip
    /// includes the time spent waiting to enter the network).
    pub issued: Tick,
}

/// A per-node traffic agent.
pub trait Endpoint {
    /// Called once per core cycle; may inject packets via `ctx`.
    fn on_cycle(&mut self, ctx: &mut NodeCtx<'_>);

    /// Called when a packet addressed to this node completes delivery.
    ///
    /// Returns `Some` when this delivery was the terminal reply of a
    /// closed-loop transaction; open-loop or packet-level endpoints
    /// return `None` and no transaction latency is recorded.
    fn on_delivered(&mut self, packet: &Packet, now: Tick) -> Option<TxnCompletion>;
}

/// Network configuration.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Network shape (torus, mesh, or full mesh).
    pub topology: NetTopology,
    /// Router configuration (shared by every node).
    pub router: RouterConfig,
    /// Simulation seed; routers fork per-node streams from it.
    pub seed: u64,
    /// Core cycles to run before statistics start (drains cold-start
    /// transients; the paper runs 75,000 cycles total, §4.3).
    pub warmup_cycles: u64,
    /// Core cycles measured after warmup.
    pub measure_cycles: u64,
    /// Deterministic fault plane: link BER, flaps, scheduled deaths, and
    /// the CRC/retransmission recovery protocol. The default config
    /// injects nothing and the engines then skip fault-plane construction
    /// entirely (zero cost, zero RNG draws).
    pub fault: FaultConfig,
}

impl NetworkConfig {
    /// Total simulated core cycles.
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles
    }
}

/// Aggregated results of one simulation.
#[derive(Clone, Debug)]
pub struct NetworkReport {
    /// Packets delivered inside the measurement window.
    pub delivered_packets: u64,
    /// Flits delivered inside the measurement window.
    pub delivered_flits: u64,
    /// Mean network-transit latency (ns), injection to last-flit delivery
    /// — the paper's "average latency of a packet through the network"
    /// (§4.3).
    pub latency: OnlineStats,
    /// Transit-latency distribution (ns).
    pub latency_hist: Histogram,
    /// Mean end-to-end latency (ns), packet creation to delivery,
    /// additionally counting source queueing.
    pub total_latency: OnlineStats,
    /// Delivered throughput in flits/router/ns — the paper's BNF x-axis.
    pub flits_per_router_ns: f64,
    /// Packets injected over the whole run (including warmup).
    pub injected_packets: u64,
    /// Flits injected over the whole run.
    pub injected_flits: u64,
    /// Packets still buffered in the network at the end.
    pub in_flight_packets: u64,
    /// Sum of router nomination counters.
    pub nominations: u64,
    /// Sum of router grant counters.
    pub grants: u64,
    /// Sum of router collision counters.
    pub collisions: u64,
    /// Sum of escape-channel dispatches.
    pub escape_dispatches: u64,
    /// Routers that engaged anti-starvation drain mode at least once.
    pub drain_engagements: u64,
    /// Sum of achieved window matching weights (nonzero only when
    /// `RouterConfig::measure_matching_weight` is set).
    pub matched_weight: u64,
    /// Sum of Hungarian maximum-weight-matching oracle weights over the
    /// same windows; `matched_weight / mwm_weight` is the network-wide
    /// optimality gap.
    pub mwm_weight: u64,
    /// Closed-loop transactions whose terminal reply drained inside the
    /// measurement window (0 for open-loop endpoints that never report a
    /// [`TxnCompletion`]).
    pub completed_txns: u64,
    /// Per-transaction round-trip latency (ns), request-issue to
    /// reply-drain — the closed-loop analogue of the BNF y-axis, immune
    /// to the open-loop backward bend because the requester cannot issue
    /// past its MSHR file.
    pub txn_latency: OnlineStats,
    /// Transaction-latency distribution (ns).
    pub txn_latency_hist: Histogram,
    /// Flits whose link traversal failed CRC (fault plane; 0 when off).
    pub flits_corrupted: u64,
    /// Timer-fired retransmission attempts (the inline first attempt of
    /// each hop is not counted).
    pub retransmissions: u64,
    /// Links declared dead after exhausting the bounded retry budget.
    pub retry_exhaustions: u64,
    /// Directed links dead at end of run (scheduled kills, dead-fraction
    /// selections, and retry exhaustions combined; each counted once).
    pub links_dead: u64,
    /// Packets dropped because link deaths severed every route to their
    /// destination — refused mid-network, never silently lost
    /// (`injected == delivered + in_flight + unreachable_drops`).
    pub unreachable_drops: u64,
    /// Extra latency (ns) imposed by the recovery protocol on packets
    /// that needed at least one retransmission: delivery-hop acceptance
    /// time minus the hop's first pin attempt.
    pub retransmit_latency_hist: Histogram,
}

impl NetworkReport {
    /// Mean latency in nanoseconds (NaN-free; 0 when nothing delivered).
    pub fn avg_latency_ns(&self) -> f64 {
        self.latency.mean()
    }

    /// The transit-latency histogram's clamp range in ns. Deliveries
    /// whose transit time reaches the upper edge are *not* dropped: they
    /// are counted in [`NetworkReport::latency_overflow`] (and as
    /// top-edge mass by the histogram's quantiles), so
    /// `latency_hist.count()` always equals `delivered_packets`.
    pub fn latency_clamp_ns(&self) -> (f64, f64) {
        (self.latency_hist.lo(), self.latency_hist.hi())
    }

    /// Measured deliveries whose transit time fell at or beyond the
    /// histogram clamp (routine under saturation, where tails pass 2 µs).
    pub fn latency_overflow(&self) -> u64 {
        self.latency_hist.overflow()
    }

    /// Mean transaction round-trip latency in nanoseconds (0 when no
    /// closed-loop transaction completed in the measurement window).
    pub fn avg_txn_latency_ns(&self) -> f64 {
        self.txn_latency.mean()
    }
}

/// The single-threaded simulator: one [`Shard`] covering every node,
/// phases run inline.
///
/// Since the sharded-engine refactor this engine is itself structured as
/// a coordinator over one shard: each cycle runs the shard's phase A
/// (routers, deliveries, endpoints) with `Forward`/`Credit` events
/// deferred to an outbox, then applies the outbox in emission order
/// (phase B). Deferring is bit-for-bit equivalent to inline application
/// because every event's effect tick lies strictly beyond the emitting
/// cycle — the same one-cycle-horizon argument that makes
/// [`crate::ShardedNetworkSim`] exact (see DESIGN.md "Sharded engine");
/// the golden-report suite pins the equivalence.
pub struct NetworkSim<E: Endpoint> {
    cfg: NetworkConfig,
    topology: NetTopology,
    shard: Shard<E>,
    outbox: Vec<OutEvent>,
    records: Vec<MeasureRecord>,
    cycle: u64,
    latency: OnlineStats,
    total_latency: OnlineStats,
    txn_latency: OnlineStats,
    /// Forward-progress watchdog: deliveries seen at the last progress
    /// check and the number of consecutive cycles without one.
    watchdog_delivered: u64,
    watchdog_stall: u64,
}

impl<E: Endpoint> NetworkSim<E> {
    /// Builds a simulator with one endpoint per node.
    ///
    /// # Panics
    ///
    /// Panics unless `endpoints.len()` equals the node count.
    pub fn new(cfg: NetworkConfig, endpoints: Vec<E>) -> Self {
        let topology = cfg.topology;
        assert_eq!(
            endpoints.len(),
            topology.nodes() as usize,
            "one endpoint per node"
        );
        NetworkSim {
            shard: Shard::new(&cfg, 0, endpoints),
            outbox: Vec::with_capacity(64),
            records: Vec::with_capacity(64),
            cycle: 0,
            latency: OnlineStats::new(),
            total_latency: OnlineStats::new(),
            txn_latency: OnlineStats::new(),
            watchdog_delivered: 0,
            watchdog_stall: 0,
            topology,
            cfg,
        }
    }

    /// The network shape.
    pub fn topology(&self) -> &NetTopology {
        &self.topology
    }

    /// Immutable router access (tests, statistics).
    pub fn router(&self, node: u16) -> &Router {
        &self.shard.routers[node as usize]
    }

    /// Endpoint access after a run.
    pub fn endpoint(&self, node: u16) -> &E {
        &self.shard.endpoints[node as usize]
    }

    /// Mutable endpoint access (drain control in conservation tests:
    /// e.g. halting a closed-loop generator before stepping the network
    /// to empty).
    pub fn endpoint_mut(&mut self, node: u16) -> &mut E {
        &mut self.shard.endpoints[node as usize]
    }

    /// Enables or disables idle-skip (on by default). The two modes
    /// produce bit-for-bit identical results; disabling exists for
    /// equivalence testing and engine benchmarking.
    pub fn set_idle_skip(&mut self, enabled: bool) {
        self.shard.set_idle_skip(enabled);
    }

    /// Router steps avoided by idle-skip so far.
    pub fn skipped_router_steps(&self) -> u64 {
        self.shard.skipped_steps
    }

    /// Runs the configured warmup + measurement window and reports.
    pub fn run(&mut self) -> NetworkReport {
        let total = self.cfg.total_cycles();
        while self.cycle < total {
            self.step_cycle();
        }
        self.report()
    }

    /// Advances exactly one core cycle (exposed for incremental tests).
    pub fn step_cycle(&mut self) {
        let env = CycleEnv::at(&self.cfg, self.cycle);

        // Phase A: routers, deliveries, endpoints; Forward/Credit events
        // land in the outbox in emission order.
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut records = std::mem::take(&mut self.records);
        self.shard.phase_a(
            &env,
            &mut |src, ev| outbox.push(OutEvent { src, ev }),
            &mut records,
        );

        // Phase B: apply the deferred events. Emission order here *is*
        // the canonical `(source router ascending, per-step emission
        // index)` order, because phase A visits routers in id order.
        for OutEvent { src, ev } in outbox.drain(..) {
            self.shard.apply(&env, src, ev);
        }
        self.outbox = outbox;

        // Latency accumulation in canonical delivery order.
        replay_records(
            &mut records,
            &mut self.latency,
            &mut self.total_latency,
            &mut self.txn_latency,
        );
        self.records = records;

        self.cycle += 1;
        if let Some(budget) = self.cfg.fault.watchdog_cycles {
            self.watchdog_check(budget);
        }
    }

    /// Forward-progress watchdog: with packets buffered in the network
    /// but no delivery for `budget` consecutive cycles, something is
    /// wedged (lost credit, dead escape path, protocol bug) — panic with
    /// a structured occupancy/credit dump instead of spinning silently.
    fn watchdog_check(&mut self, budget: u64) {
        let delivered = self.shard.delivered_all;
        if delivered != self.watchdog_delivered || self.shard.occupancy() == 0 {
            self.watchdog_delivered = delivered;
            self.watchdog_stall = 0;
            return;
        }
        self.watchdog_stall += 1;
        if self.watchdog_stall >= budget {
            panic!(
                "watchdog: no delivery for {budget} cycles with packets in flight\n{}",
                self.diagnostic_dump()
            );
        }
    }

    /// Structured per-router occupancy/credit/fault dump — the payload
    /// the watchdog panics with, also usable by hang-guarded tests.
    pub fn diagnostic_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "network diagnostic @ cycle {}: occupancy {} packet(s), {} delivered so far",
            self.cycle,
            self.shard.occupancy(),
            self.shard.delivered_all,
        );
        self.shard.diagnostics(&mut out);
        out
    }

    /// Builds the report for the window simulated so far.
    pub fn report(&self) -> NetworkReport {
        let measure_ns = self
            .cfg
            .router
            .timing
            .core
            .cycles(self.cfg.measure_cycles)
            .as_ns();
        report_from_parts(
            &self.cfg,
            measure_ns,
            std::iter::once(&self.shard),
            &self.latency,
            &self.total_latency,
            &self.txn_latency,
        )
    }
}

/// Assembles a [`NetworkReport`] from shard partials plus the centrally
/// replayed latency accumulators. Shared by both engines; every merge in
/// here is exact (integer sums and [`Histogram::merge`]) — the only
/// order-sensitive state, the `OnlineStats` pair, is handed in already
/// accumulated in canonical order.
pub(crate) fn report_from_parts<'a, E: Endpoint + 'a>(
    cfg: &NetworkConfig,
    measure_ns: f64,
    shards: impl IntoIterator<Item = &'a Shard<E>>,
    latency: &OnlineStats,
    total_latency: &OnlineStats,
    txn_latency: &OnlineStats,
) -> NetworkReport {
    let routers = cfg.topology.nodes() as f64;
    let mut nominations = 0;
    let mut grants = 0;
    let mut collisions = 0;
    let mut escapes = 0;
    let mut drains = 0;
    let mut matched_weight = 0;
    let mut mwm_weight = 0;
    let mut in_flight = 0u64;
    let mut injected_packets = 0;
    let mut injected_flits = 0;
    let mut measured_packets = 0;
    let mut measured_flits = 0;
    let mut measured_txns = 0;
    let mut latency_hist = Histogram::new(0.0, 2000.0, 200);
    let mut txn_latency_hist = crate::shard::txn_histogram();
    let mut flits_corrupted = 0;
    let mut retransmissions = 0;
    let mut retry_exhaustions = 0;
    let mut links_dead = 0;
    let mut unreachable_drops = 0;
    let mut retransmit_latency_hist = retransmit_histogram();
    for shard in shards {
        for r in &shard.routers {
            nominations += r.stats().nominations.get();
            grants += r.stats().grants.get();
            collisions += r.stats().collisions.get();
            escapes += r.stats().escape_dispatches.get();
            drains += r.stats().drain_engagements.get();
            matched_weight += r.stats().matched_weight.get();
            mwm_weight += r.stats().mwm_weight.get();
            in_flight += r.accounted_packets() as u64;
        }
        in_flight += shard.pending_deliveries() as u64;
        injected_packets += shard.injected_packets;
        injected_flits += shard.injected_flits;
        measured_packets += shard.measured_packets;
        measured_flits += shard.measured_flits;
        measured_txns += shard.measured_txns;
        latency_hist.merge(&shard.latency_hist);
        txn_latency_hist.merge(&shard.txn_latency_hist);
        if let Some(plane) = shard.faults() {
            flits_corrupted += plane.flits_corrupted;
            retransmissions += plane.retransmissions;
            retry_exhaustions += plane.retry_exhaustions;
            links_dead += plane.links_dead;
            unreachable_drops += plane.unreachable_drops;
            in_flight += plane.queued_packets;
            retransmit_latency_hist.merge(&plane.retransmit_hist);
        }
    }
    NetworkReport {
        delivered_packets: measured_packets,
        delivered_flits: measured_flits,
        latency: latency.clone(),
        latency_hist,
        total_latency: total_latency.clone(),
        flits_per_router_ns: measured_flits as f64 / (routers * measure_ns),
        injected_packets,
        injected_flits,
        in_flight_packets: in_flight,
        nominations,
        grants,
        collisions,
        escape_dispatches: escapes,
        drain_engagements: drains,
        matched_weight,
        mwm_weight,
        completed_txns: measured_txns,
        txn_latency: txn_latency.clone(),
        txn_latency_hist,
        flits_corrupted,
        retransmissions,
        retry_exhaustions,
        links_dead,
        unreachable_drops,
        retransmit_latency_hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Torus;
    use router::ArbAlgorithm;

    /// Injects one request to a fixed destination, then goes quiet.
    struct OneShot {
        dest: u16,
        sent: bool,
        received: Vec<(u64, Tick)>,
    }

    impl Endpoint for OneShot {
        fn on_cycle(&mut self, ctx: &mut NodeCtx<'_>) {
            if !self.sent && ctx.node() == 0 {
                let p = Packet::new(
                    router::packet::PacketId(1),
                    CoherenceClass::Request,
                    0,
                    self.dest,
                    ctx.now(),
                    0,
                );
                if ctx.inject(InputPort::Cache, p) == InjectionOutcome::Accepted {
                    self.sent = true;
                }
            }
        }

        fn on_delivered(&mut self, packet: &Packet, now: Tick) -> Option<TxnCompletion> {
            self.received.push((packet.id.0, now));
            None
        }
    }

    fn sim(dest: u16, algo: ArbAlgorithm) -> NetworkSim<OneShot> {
        let cfg = NetworkConfig {
            topology: Torus::net_4x4().into(),
            router: RouterConfig::alpha_21364(algo),
            seed: 7,
            warmup_cycles: 0,
            measure_cycles: 2000,
            fault: FaultConfig::default(),
        };
        let endpoints = (0..16)
            .map(|_| OneShot {
                dest,
                sent: false,
                received: Vec::new(),
            })
            .collect();
        NetworkSim::new(cfg, endpoints)
    }

    #[test]
    fn single_packet_crosses_the_torus() {
        for algo in [
            ArbAlgorithm::SpaaBase,
            ArbAlgorithm::SpaaRotary,
            ArbAlgorithm::WfaBase,
            ArbAlgorithm::WfaRotary,
            ArbAlgorithm::Pim1,
            ArbAlgorithm::Islip { iterations: 1 },
            ArbAlgorithm::Islip { iterations: 2 },
            ArbAlgorithm::Islip { iterations: 3 },
        ] {
            let mut s = sim(10, algo); // (2,2): two hops in each dimension
            let report = s.run();
            assert_eq!(report.delivered_packets, 1, "{algo}");
            assert_eq!(report.delivered_flits, 3, "{algo}");
            let ep = s.endpoint(10);
            assert_eq!(ep.received.len(), 1, "{algo}");
            assert_eq!(report.in_flight_packets, 0, "{algo}: network drained");
        }
    }

    #[test]
    fn self_addressed_packet_is_delivered_locally() {
        let mut s = sim(0, ArbAlgorithm::SpaaBase);
        let report = s.run();
        assert_eq!(report.delivered_packets, 1);
        assert_eq!(s.endpoint(0).received.len(), 1);
    }

    #[test]
    fn zero_load_latency_matches_pipeline_arithmetic() {
        // One 3-flit request to an adjacent node (1 hop) under SPAA:
        //   inject:    3 cycles local decode (pin at t=0)
        //   LA..GA:    2 cycles
        //   to pin:    7 cycles, aligned to the link clock
        //   wire:      3 link clocks
        //   arrive:    decode 4 cycles, LA..GA 2, local output delay 7
        //   drain:     3 flits at core rate
        // The exact number is checked against the model once and pinned to
        // catch accidental pipeline regressions.
        let mut s = sim(1, ArbAlgorithm::SpaaBase);
        let report = s.run();
        assert_eq!(report.delivered_packets, 1);
        let lat = report.avg_latency_ns();
        // 12 core cycles + link alignment at hop 1; 13 cycles + drain at
        // the destination; 3.75 ns of wire. Expect ~25-35 ns.
        assert!(
            (20.0..40.0).contains(&lat),
            "unexpected zero-load latency {lat} ns"
        );
    }

    #[test]
    fn every_node_can_reach_every_other() {
        // One packet from node 0 to each destination in turn.
        for dest in 0..16u16 {
            let mut s = sim(dest, ArbAlgorithm::SpaaBase);
            let report = s.run();
            assert_eq!(report.delivered_packets, 1, "dest {dest}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = sim(9, ArbAlgorithm::Pim1);
            let r = s.run();
            (r.delivered_packets, r.latency.mean().to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_histogram_accounts_every_delivery() {
        let mut s = sim(10, ArbAlgorithm::SpaaRotary);
        let report = s.run();
        assert_eq!(report.latency_clamp_ns(), (0.0, 2000.0));
        assert_eq!(
            report.latency_hist.count(),
            report.delivered_packets,
            "every measured delivery lands in a bin or the overflow bucket"
        );
        assert_eq!(
            report.latency_overflow()
                + report.latency_hist.underflow()
                + report.latency_hist.bins().iter().sum::<u64>(),
            report.delivered_packets,
        );
    }

    /// Injects one packet long after the network has gone fully idle.
    struct SleepyInjector {
        fire_at_cycle: u64,
        cycle: u64,
        dest: u16,
        sent: bool,
        received: usize,
    }

    impl Endpoint for SleepyInjector {
        fn on_cycle(&mut self, ctx: &mut NodeCtx<'_>) {
            let cycle = self.cycle;
            self.cycle += 1;
            if ctx.node() == 0 && !self.sent && cycle >= self.fire_at_cycle {
                let p = Packet::new(
                    router::packet::PacketId(7),
                    CoherenceClass::Request,
                    0,
                    self.dest,
                    ctx.now(),
                    0,
                );
                if ctx.inject(InputPort::Cache, p) == InjectionOutcome::Accepted {
                    self.sent = true;
                }
            }
        }

        fn on_delivered(&mut self, _packet: &Packet, _now: Tick) -> Option<TxnCompletion> {
            self.received += 1;
            None
        }
    }

    /// Wake-bookkeeping pin: a router that has been asleep for a long
    /// stretch (wake tick `Tick::MAX`) must be re-armed *exactly* when a
    /// local injection lands — the post-injection wake recompute may not
    /// retain a stale tick or miss the arrival's decode edge. If it did,
    /// the packet would sit undecoded forever and the skip-on run would
    /// diverge from the skip-off run.
    #[test]
    fn sleeping_router_never_misses_an_injection_wake() {
        let run = |idle_skip: bool| {
            let cfg = NetworkConfig {
                topology: Torus::net_4x4().into(),
                router: RouterConfig::alpha_21364(ArbAlgorithm::SpaaRotary),
                seed: 11,
                warmup_cycles: 0,
                measure_cycles: 4000,
                fault: FaultConfig::default(),
            };
            let endpoints = (0..16)
                .map(|_| SleepyInjector {
                    fire_at_cycle: 2500,
                    cycle: 0,
                    dest: 10,
                    sent: false,
                    received: 0,
                })
                .collect();
            let mut s = NetworkSim::new(cfg, endpoints);
            s.set_idle_skip(idle_skip);
            let r = s.run();
            let skipped = s.skipped_router_steps();
            let received = s.endpoint(10).received;
            (
                r.delivered_packets,
                r.latency.mean().to_bits(),
                received,
                skipped,
            )
        };
        let (d_off, lat_off, recv_off, _) = run(false);
        let (d_on, lat_on, recv_on, skipped) = run(true);
        assert_eq!(d_off, 1, "baseline delivers the late packet");
        assert_eq!((d_on, lat_on, recv_on), (d_off, lat_off, recv_off));
        // The 2500 idle prelude cycles must actually have been skipped —
        // otherwise this test isn't exercising the sleep/wake edge.
        assert!(
            skipped > 2000 * 16 / 2,
            "idle prelude was not skipped ({skipped} steps)"
        );
    }
}
