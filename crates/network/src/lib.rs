//! The interconnection network: pipelined routers on a pluggable shape.
//!
//! This crate assembles `router` instances into a network. The paper's
//! network is the 21364's 2D torus (§2.1), but topology, routing
//! function, and deadlock-avoidance scheme are orthogonal axes here:
//!
//! * [`topology`] — the [`topology::Topology`] trait (node enumeration,
//!   links with latency, the feeder relation that returns credits
//!   upstream) and its shapes: the paper's [`topology::Torus`], a 2D
//!   [`topology::Mesh`] without wrap links, and a small-radix
//!   [`topology::FullMesh`], all behind the `Copy`
//!   [`topology::NetTopology`] enum;
//! * [`routing`] — the [`routing::Routing`] trait producing per-hop
//!   [`router::RouteInfo`]: minimal-rectangle adaptive candidates with
//!   dateline VC0/VC1 escape on the torus, minimal-rectangle with plain
//!   XY escape on the mesh, and VC-less direct-plus-misroute routing on
//!   the full mesh — each pairing deadlock-free by its own argument
//!   (DESIGN.md "Topology axis");
//! * [`sim`] — the network simulator: steps every router on each 1.2 GHz
//!   core-clock edge, transports packets over 0.8 GHz links with three
//!   link-clocks of wire latency, returns credits, and delivers packets to
//!   per-node [`sim::Endpoint`]s;
//! * [`sharded`] — the same simulation on N worker threads: contiguous
//!   node-range shards stepped in lockstep one core cycle at a time,
//!   exchanging cross-shard events at a barrier — bit-for-bit identical
//!   to [`sim`];
//! * [`fault`] — the deterministic fault plane: per-link BER corruption,
//!   link flaps, and scheduled or exhaustion-triggered link death, with
//!   CRC/retransmission recovery, fault-aware route masking, and a
//!   forward-progress watchdog — bit-exact across both engines and every
//!   worker count, with strictly zero cost when disabled.
//!
//! The traffic side (coherence transactions, MSHRs, §4.2 patterns) lives
//! in the `workload` crate; anything implementing [`sim::Endpoint`] can
//! drive the network.

pub mod fault;
pub mod routing;
pub(crate) mod shard;
pub mod sharded;
pub mod sim;
pub mod topology;

pub use fault::{DeadLinks, FaultConfig, LinkFlap, LinkKill};
pub use routing::{route_for, FullMeshRouting, MeshRouting, Routing, TorusRouting};
pub use sharded::ShardedNetworkSim;
pub use sim::{
    Endpoint, InjectionOutcome, NetworkConfig, NetworkReport, NetworkSim, NodeCtx, TxnCompletion,
};
pub use topology::{FullMesh, LinkTarget, Mesh, NetTopology, ShardMap, Topology, Torus};
