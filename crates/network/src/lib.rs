//! The 21364 interconnection network: a 2D torus of pipelined routers.
//!
//! This crate assembles `router` instances into the network of §2.1:
//!
//! * [`topology`] — torus coordinates, neighbour relations, and the
//!   direction conventions that tie a router's output ports to its
//!   neighbours' input ports;
//! * [`routing`] — per-hop [`router::RouteInfo`] computation:
//!   minimal-rectangle adaptive candidates ("the adaptive routing
//!   algorithm has to pick one output port among a maximum of two"),
//!   dimension-order escape hops, and the dateline VC0/VC1 selection that
//!   keeps the escape sub-network deadlock-free;
//! * [`sim`] — the network simulator: steps every router on each 1.2 GHz
//!   core-clock edge, transports packets over 0.8 GHz links with three
//!   link-clocks of wire latency, returns credits, and delivers packets to
//!   per-node [`sim::Endpoint`]s;
//! * [`sharded`] — the same simulation on N worker threads: contiguous
//!   torus shards stepped in lockstep one core cycle at a time, exchanging
//!   cross-shard events at a barrier — bit-for-bit identical to [`sim`].
//!
//! The traffic side (coherence transactions, MSHRs, §4.2 patterns) lives
//! in the `workload` crate; anything implementing [`sim::Endpoint`] can
//! drive the network.

pub mod routing;
pub(crate) mod shard;
pub mod sharded;
pub mod sim;
pub mod topology;

pub use routing::route_for;
pub use sharded::ShardedNetworkSim;
pub use sim::{Endpoint, InjectionOutcome, NetworkConfig, NetworkReport, NetworkSim, NodeCtx};
pub use topology::{ShardMap, Torus};
