//! Network shapes: the [`Topology`] trait and its three implementations.
//!
//! The 21364 shipped on a 2D torus (§2.1, Figure 3), but nothing in the
//! router model depends on that shape — a router sees packets arriving
//! through four generic network ports with a pre-computed
//! [`RouteInfo`](router::RouteInfo). The [`Topology`] trait captures what
//! the simulation engines actually need from a shape: how many nodes
//! exist, which `(node, output port)` pairs carry a link and where that
//! link lands (peer node + entry input port), the inverse feeder relation
//! used to return credits upstream, and per-link wire latency. The
//! [`NetTopology`] enum dispatches over the concrete shapes so both
//! engines stay monomorphic.
//!
//! Shapes:
//!
//! * [`Torus`] — the paper's `width × height` 2D torus. Nodes are
//!   numbered row-major; the four directions map to router ports as
//!   **North = −y, South = +y, East = +x, West = −x**, all with
//!   wraparound. Every link connects an output port to the opposite
//!   input port.
//! * [`Mesh`] — the same grid without wrap links: edge nodes simply lack
//!   the outward links (2–4 neighbours per node).
//! * [`FullMesh`] — up to [`FullMesh::MAX_NODES`] nodes, every pair
//!   directly linked. The four network ports become plain link indices:
//!   port *k* of node *a* reaches the *k*-th other node in id order, so
//!   the entry port at the peer depends on both endpoints rather than
//!   being the geometric opposite.
//!
//! The sharded engine's one-cycle barrier quantum relies on a contract
//! every implementation must honour: [`Topology::link_latency`] must be
//! at least one core cycle on every link (see DESIGN.md "Topology
//! axis").

use arbitration::ports::{InputPort, OutputPort};
use simcore::Tick;
use std::fmt;

/// Where a link lands: the peer node and the input port through which
/// traffic enters it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkTarget {
    /// The node at the far end of the link.
    pub peer: u16,
    /// The peer's input port fed by this link.
    pub entry: InputPort,
}

/// A network shape: node enumeration, links with latency, and the
/// inverse feeder relation. Everything the simulation engines need to
/// move packets and credits between routers.
pub trait Topology {
    /// Number of nodes.
    fn nodes(&self) -> u16;

    /// The link leaving `node` through network output `port`, or `None`
    /// when that port is unwired (a non-network port, a mesh edge, or a
    /// full-mesh port beyond the peer count).
    fn link(&self, node: u16, port: OutputPort) -> Option<LinkTarget>;

    /// The upstream `(peer, peer's output port)` that feeds `input` at
    /// `node` — the inverse of [`Topology::link`]: credits for `input`
    /// return to that peer through that output port.
    fn feeder(&self, node: u16, input: InputPort) -> Option<(u16, OutputPort)>;

    /// Minimal hop distance between two nodes.
    fn distance(&self, a: u16, b: u16) -> u16;

    /// Wire latency of the link leaving `node` through `port`, given the
    /// router timing's base link latency. The default is uniform wire
    /// latency; implementations may stretch individual links but must
    /// never return less than one core cycle — the sharded engine's
    /// one-cycle barrier quantum depends on it (DESIGN.md "Topology
    /// axis").
    fn link_latency(&self, node: u16, port: OutputPort, base: Tick) -> Tick {
        let _ = (node, port);
        base
    }

    /// Average minimal hop distance over all (src, dest) pairs with
    /// uniform random destinations (used to sanity-check zero-load
    /// latencies against §4.3).
    fn mean_uniform_distance(&self) -> f64 {
        let n = self.nodes() as u32;
        let mut total = 0u64;
        for a in 0..self.nodes() {
            for b in 0..self.nodes() {
                total += self.distance(a, b) as u64;
            }
        }
        total as f64 / (n as f64 * n as f64)
    }
}

/// The entry input port of a grid link: always the geometric opposite of
/// the output direction.
fn grid_entry_port(dir: OutputPort) -> InputPort {
    match dir {
        OutputPort::North => InputPort::South,
        OutputPort::South => InputPort::North,
        OutputPort::East => InputPort::West,
        OutputPort::West => InputPort::East,
        _ => panic!("{dir} is not a grid direction"),
    }
}

/// The grid output port that feeds an input port (inverse of
/// [`grid_entry_port`]).
fn grid_feeder_port(input: InputPort) -> OutputPort {
    match input {
        InputPort::North => OutputPort::South,
        InputPort::South => OutputPort::North,
        InputPort::East => OutputPort::West,
        InputPort::West => OutputPort::East,
        _ => panic!("{input} is not a grid direction"),
    }
}

/// The grid direction an input port faces (which neighbour it receives
/// from).
fn grid_input_direction(input: InputPort) -> OutputPort {
    match input {
        InputPort::North => OutputPort::North,
        InputPort::South => OutputPort::South,
        InputPort::East => OutputPort::East,
        InputPort::West => OutputPort::West,
        _ => panic!("{input} is not a grid direction"),
    }
}

/// A `width × height` torus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    width: u16,
    height: u16,
}

impl Torus {
    /// Creates a torus.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are at least 2 (a 1-wide ring would
    /// make a direction its own opposite) and the node count fits `u16`.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width >= 2 && height >= 2, "torus needs at least 2x2 nodes");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32,
            "too many nodes"
        );
        Torus { width, height }
    }

    /// The paper's 16-processor network.
    pub fn net_4x4() -> Self {
        Torus::new(4, 4)
    }

    /// The paper's 64-processor network.
    pub fn net_8x8() -> Self {
        Torus::new(8, 8)
    }

    /// The §5.3 144-processor scaling network.
    pub fn net_12x12() -> Self {
        Torus::new(12, 12)
    }

    /// A 256-processor network (beyond the paper's studies; reachable
    /// with the sharded engine).
    pub fn net_16x16() -> Self {
        Torus::new(16, 16)
    }

    /// A 1024-processor network (sharded-engine scale).
    pub fn net_32x32() -> Self {
        Torus::new(32, 32)
    }

    /// Width (x extent).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Height (y extent).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.width * self.height
    }

    /// Node id of `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn node(&self, x: u16, y: u16) -> u16 {
        assert!(x < self.width && y < self.height, "coordinate out of range");
        y * self.width + x
    }

    /// Coordinates of a node id.
    pub fn coords(&self, node: u16) -> (u16, u16) {
        assert!(node < self.nodes(), "node {node} out of range");
        (node % self.width, node / self.width)
    }

    /// The neighbour reached through a torus output port.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is not a torus port.
    pub fn neighbor(&self, node: u16, dir: OutputPort) -> u16 {
        let (x, y) = self.coords(node);
        let (nx, ny) = match dir {
            OutputPort::North => (x, (y + self.height - 1) % self.height),
            OutputPort::South => (x, (y + 1) % self.height),
            OutputPort::East => ((x + 1) % self.width, y),
            OutputPort::West => ((x + self.width - 1) % self.width, y),
            _ => panic!("{dir} is not a torus direction"),
        };
        self.node(nx, ny)
    }

    /// The input port through which traffic sent via `dir` enters the
    /// neighbour (always the opposite side).
    pub fn entry_port(dir: OutputPort) -> InputPort {
        grid_entry_port(dir)
    }

    /// The output port that feeds an input port (inverse of
    /// [`Torus::entry_port`]): credits for input `p` return to the
    /// neighbour in `p`'s direction, through this port.
    pub fn feeder_port(input: InputPort) -> OutputPort {
        grid_feeder_port(input)
    }

    /// The torus direction of an input port (which neighbour it faces).
    pub fn input_direction(input: InputPort) -> OutputPort {
        grid_input_direction(input)
    }

    /// Minimal hop distance between two nodes.
    pub fn distance(&self, a: u16, b: u16) -> u16 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ring_distance(ax, bx, self.width);
        let dy = ring_distance(ay, by, self.height);
        dx + dy
    }

    /// Average minimal hop distance over all (src, dest) pairs with
    /// uniform random destinations.
    pub fn mean_uniform_distance(&self) -> f64 {
        Topology::mean_uniform_distance(self)
    }
}

impl Topology for Torus {
    fn nodes(&self) -> u16 {
        Torus::nodes(self)
    }

    fn link(&self, node: u16, port: OutputPort) -> Option<LinkTarget> {
        if !port.is_network() {
            return None;
        }
        Some(LinkTarget {
            peer: self.neighbor(node, port),
            entry: Torus::entry_port(port),
        })
    }

    fn feeder(&self, node: u16, input: InputPort) -> Option<(u16, OutputPort)> {
        if !input.is_network() {
            return None;
        }
        let peer = self.neighbor(node, Torus::input_direction(input));
        Some((peer, Torus::feeder_port(input)))
    }

    fn distance(&self, a: u16, b: u16) -> u16 {
        Torus::distance(self, a, b)
    }
}

fn ring_distance(a: u16, b: u16, extent: u16) -> u16 {
    let d = (b + extent - a) % extent;
    d.min(extent - d)
}

/// A `width × height` 2D mesh: the torus grid without wrap links. Edge
/// nodes have 2 or 3 neighbours, corners 2; the outward-facing ports are
/// simply unwired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are at least 2 and the node count
    /// fits `u16`.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width >= 2 && height >= 2, "mesh needs at least 2x2 nodes");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32,
            "too many nodes"
        );
        Mesh { width, height }
    }

    /// Width (x extent).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Height (y extent).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.width * self.height
    }

    /// Node id of `(x, y)` (row-major, like [`Torus::node`]).
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn node(&self, x: u16, y: u16) -> u16 {
        assert!(x < self.width && y < self.height, "coordinate out of range");
        y * self.width + x
    }

    /// Coordinates of a node id.
    pub fn coords(&self, node: u16) -> (u16, u16) {
        assert!(node < self.nodes(), "node {node} out of range");
        (node % self.width, node / self.width)
    }

    /// The neighbour through `dir`, or `None` at the grid edge.
    pub fn neighbor(&self, node: u16, dir: OutputPort) -> Option<u16> {
        let (x, y) = self.coords(node);
        let (nx, ny) = match dir {
            OutputPort::North => (x, y.checked_sub(1)?),
            OutputPort::South => (x, y + 1),
            OutputPort::East => (x + 1, y),
            OutputPort::West => (x.checked_sub(1)?, y),
            _ => return None,
        };
        if nx < self.width && ny < self.height {
            Some(self.node(nx, ny))
        } else {
            None
        }
    }
}

impl Topology for Mesh {
    fn nodes(&self) -> u16 {
        Mesh::nodes(self)
    }

    fn link(&self, node: u16, port: OutputPort) -> Option<LinkTarget> {
        if !port.is_network() {
            return None;
        }
        self.neighbor(node, port).map(|peer| LinkTarget {
            peer,
            entry: grid_entry_port(port),
        })
    }

    fn feeder(&self, node: u16, input: InputPort) -> Option<(u16, OutputPort)> {
        if !input.is_network() {
            return None;
        }
        let peer = self.neighbor(node, grid_input_direction(input))?;
        Some((peer, grid_feeder_port(input)))
    }

    fn distance(&self, a: u16, b: u16) -> u16 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }
}

/// A full mesh over up to [`FullMesh::MAX_NODES`] nodes: every pair of
/// nodes shares a direct link.
///
/// The router's four network ports become plain link indices: port *k*
/// of node *a* reaches the *k*-th other node in ascending id order
/// (skipping *a* itself). The entry port at the peer is *a*'s index in
/// the *peer's* neighbour list — unlike the grid shapes, a link does
/// *not* connect an output to the geometrically opposite input, which is
/// why the engines route packets and credits through
/// [`Topology::link`]/[`Topology::feeder`] rather than a static
/// direction map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FullMesh {
    nodes: u16,
}

impl FullMesh {
    /// Largest node count a 4-network-port router can fully connect.
    pub const MAX_NODES: u16 = 4 + 1;

    /// Creates a full mesh.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= nodes <= 5`: each node needs `nodes - 1`
    /// network ports and the 21364 router has four.
    pub fn new(nodes: u16) -> Self {
        assert!(
            (2..=Self::MAX_NODES).contains(&nodes),
            "a full mesh over the 4-port router supports 2..=5 nodes (got {nodes})"
        );
        FullMesh { nodes }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// The peer reached through link index `k` of `node`: the `k`-th
    /// other node in ascending id order.
    fn peer_of(&self, node: u16, k: u16) -> u16 {
        if k < node {
            k
        } else {
            k + 1
        }
    }

    /// The output port of `from` on its direct link toward `to`.
    ///
    /// # Panics
    ///
    /// Panics when `from == to` or either node is out of range.
    pub fn port_toward(&self, from: u16, to: u16) -> OutputPort {
        assert!(from < self.nodes && to < self.nodes, "node out of range");
        assert_ne!(from, to, "no self-link in a full mesh");
        let k = if to < from { to } else { to - 1 };
        OutputPort::from_index(k as usize)
    }
}

impl Topology for FullMesh {
    fn nodes(&self) -> u16 {
        FullMesh::nodes(self)
    }

    fn link(&self, node: u16, port: OutputPort) -> Option<LinkTarget> {
        if !port.is_network() {
            return None;
        }
        let k = port.index() as u16;
        if k + 1 >= self.nodes {
            return None;
        }
        let peer = self.peer_of(node, k);
        let entry = if node < peer { node } else { node - 1 };
        Some(LinkTarget {
            peer,
            entry: InputPort::from_index(entry as usize),
        })
    }

    fn feeder(&self, node: u16, input: InputPort) -> Option<(u16, OutputPort)> {
        if !input.is_network() {
            return None;
        }
        let k = input.index() as u16;
        if k + 1 >= self.nodes {
            return None;
        }
        let peer = self.peer_of(node, k);
        Some((peer, self.port_toward(peer, node)))
    }

    fn distance(&self, a: u16, b: u16) -> u16 {
        assert!(a < self.nodes && b < self.nodes, "node out of range");
        u16::from(a != b)
    }
}

/// The concrete shapes the simulator knows, behind one `Copy` value so
/// configs stay plain data and both engines stay monomorphic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetTopology {
    /// 2D torus with wraparound (the paper's network).
    Torus(Torus),
    /// 2D mesh (no wrap links).
    Mesh(Mesh),
    /// Small-radix full mesh.
    FullMesh(FullMesh),
}

impl NetTopology {
    /// Grid extents when the shape is a grid (torus or mesh), `None` for
    /// the full mesh. Both grids number nodes row-major, so
    /// `node = y * width + x` holds whenever this returns `Some`.
    pub fn grid(&self) -> Option<(u16, u16)> {
        match self {
            NetTopology::Torus(t) => Some((t.width(), t.height())),
            NetTopology::Mesh(m) => Some((m.width(), m.height())),
            NetTopology::FullMesh(_) => None,
        }
    }

    /// Number of nodes (inherent convenience; also via [`Topology`]).
    pub fn nodes(&self) -> u16 {
        match self {
            NetTopology::Torus(t) => t.nodes(),
            NetTopology::Mesh(m) => m.nodes(),
            NetTopology::FullMesh(f) => f.nodes(),
        }
    }

    /// A compact shape label: `4x4` (torus, the historical spelling kept
    /// stable for golden digests), `mesh4x4`, `fullmesh5`.
    pub fn label(&self) -> String {
        match self {
            NetTopology::Torus(t) => format!("{}x{}", t.width(), t.height()),
            NetTopology::Mesh(m) => format!("mesh{}x{}", m.width(), m.height()),
            NetTopology::FullMesh(f) => format!("fullmesh{}", f.nodes()),
        }
    }
}

impl fmt::Display for NetTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl From<Torus> for NetTopology {
    fn from(t: Torus) -> Self {
        NetTopology::Torus(t)
    }
}

impl From<Mesh> for NetTopology {
    fn from(m: Mesh) -> Self {
        NetTopology::Mesh(m)
    }
}

impl From<FullMesh> for NetTopology {
    fn from(f: FullMesh) -> Self {
        NetTopology::FullMesh(f)
    }
}

impl Topology for NetTopology {
    fn nodes(&self) -> u16 {
        NetTopology::nodes(self)
    }

    fn link(&self, node: u16, port: OutputPort) -> Option<LinkTarget> {
        match self {
            NetTopology::Torus(t) => t.link(node, port),
            NetTopology::Mesh(m) => m.link(node, port),
            NetTopology::FullMesh(f) => f.link(node, port),
        }
    }

    fn feeder(&self, node: u16, input: InputPort) -> Option<(u16, OutputPort)> {
        match self {
            NetTopology::Torus(t) => t.feeder(node, input),
            NetTopology::Mesh(m) => m.feeder(node, input),
            NetTopology::FullMesh(f) => f.feeder(node, input),
        }
    }

    fn distance(&self, a: u16, b: u16) -> u16 {
        match self {
            NetTopology::Torus(t) => Topology::distance(t, a, b),
            NetTopology::Mesh(m) => Topology::distance(m, a, b),
            NetTopology::FullMesh(f) => Topology::distance(f, a, b),
        }
    }

    fn link_latency(&self, node: u16, port: OutputPort, base: Tick) -> Tick {
        match self {
            NetTopology::Torus(t) => t.link_latency(node, port, base),
            NetTopology::Mesh(m) => m.link_latency(node, port, base),
            NetTopology::FullMesh(f) => f.link_latency(node, port, base),
        }
    }
}

/// A partition of a topology's routers into contiguous near-equal shards.
///
/// The sharded engine assigns each worker thread one shard. Shards are
/// contiguous node-id ranges (on the grids, row-major order, so a shard
/// is a band of rows plus partial edge rows): contiguity is what lets
/// the engine apply deferred cross-shard events in ascending-source
/// order by simply visiting shards in index order. Sizes differ by at
/// most one node, with lower-indexed shards taking the remainder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// `bounds[s]..bounds[s + 1]` is shard `s`'s node range;
    /// `bounds[0] == 0` and `*bounds.last()` is the node count.
    bounds: Vec<u16>,
}

impl ShardMap {
    /// Partitions `topo` into `shards` contiguous node ranges. The
    /// request is clamped to `[1, nodes]` — asking for more shards than
    /// routers yields one single-node shard per router, and `0` is
    /// treated as 1 — so every shard is non-empty.
    pub fn new(topo: &impl Topology, shards: usize) -> Self {
        let nodes = topo.nodes() as usize;
        let shards = shards.clamp(1, nodes);
        let base = nodes / shards;
        let extra = nodes % shards;
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u16);
        let mut at = 0usize;
        for s in 0..shards {
            at += base + usize::from(s < extra);
            bounds.push(at as u16);
        }
        ShardMap { bounds }
    }

    /// Number of shards (≥ 1).
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The contiguous node-id range owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shards()`.
    pub fn range(&self, shard: usize) -> std::ops::Range<u16> {
        self.bounds[shard]..self.bounds[shard + 1]
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is outside the partitioned topology.
    pub fn shard_of(&self, node: u16) -> usize {
        assert!(
            node < *self.bounds.last().expect("bounds never empty"),
            "node {node} outside the shard map"
        );
        self.bounds.partition_point(|&b| b <= node) - 1
    }

    /// Every ordered pair `(a, b)` where `a` and `b` are distinct linked
    /// neighbours living in different shards — the links across which
    /// the sharded engine must exchange packets and credits. Each
    /// undirected cross-shard link appears exactly twice, once per
    /// direction, so the relation is symmetric by construction checks
    /// (and deduplicated: on a 2-extent torus ring both directions reach
    /// the same neighbour).
    pub fn cross_shard_links(&self, topo: &impl Topology) -> Vec<(u16, u16)> {
        let mut links = Vec::new();
        for node in 0..topo.nodes() {
            for dir in &OutputPort::ALL[..4] {
                if let Some(l) = topo.link(node, *dir) {
                    if self.shard_of(node) != self.shard_of(l.peer) {
                        links.push((node, l.peer));
                    }
                }
            }
        }
        links.sort_unstable();
        links.dedup();
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_round_trip() {
        let t = Torus::net_8x8();
        for n in 0..t.nodes() {
            let (x, y) = t.coords(n);
            assert_eq!(t.node(x, y), n);
        }
    }

    #[test]
    fn neighbors_wrap() {
        let t = Torus::net_4x4();
        // Node 0 is (0,0): North wraps to (0,3) = 12, West wraps to (3,0).
        assert_eq!(t.neighbor(0, OutputPort::North), 12);
        assert_eq!(t.neighbor(0, OutputPort::West), 3);
        assert_eq!(t.neighbor(0, OutputPort::South), 4);
        assert_eq!(t.neighbor(0, OutputPort::East), 1);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let t = Torus::net_4x4();
        for n in 0..t.nodes() {
            for dir in [
                OutputPort::North,
                OutputPort::South,
                OutputPort::East,
                OutputPort::West,
            ] {
                let m = t.neighbor(n, dir);
                let back = Torus::feeder_port(Torus::entry_port(dir));
                assert_eq!(
                    t.neighbor(m, Torus::input_direction(Torus::entry_port(dir))),
                    n,
                    "walking back along the entry direction returns home"
                );
                assert_eq!(back, dir, "feeder/entry are inverses");
            }
        }
    }

    #[test]
    fn distances() {
        let t = Torus::net_4x4();
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.distance(0, 3), 1, "wraparound shortcut");
        assert_eq!(t.distance(0, 10), 4, "(0,0) to (2,2): 2+2");
        assert_eq!(t.distance(0, 5), 2);
        // Symmetric.
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn mean_uniform_distance_4x4() {
        // Each dimension of extent 4 has ring distances {0,1,2,1} => mean
        // 1.0; two dimensions => 2.0 expected hops.
        let t = Torus::net_4x4();
        assert!((t.mean_uniform_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a torus direction")]
    fn local_port_is_not_a_direction() {
        let t = Torus::net_4x4();
        let _ = t.neighbor(0, OutputPort::L0);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_torus_rejected() {
        let _ = Torus::new(1, 8);
    }

    /// The generic link/feeder relations must be mutual inverses on every
    /// shape: following a link and then asking the destination who feeds
    /// the entry port names the original `(node, port)`.
    fn assert_link_feeder_inverse(topo: &impl Topology) {
        for node in 0..topo.nodes() {
            for port in &OutputPort::ALL[..4] {
                if let Some(l) = topo.link(node, *port) {
                    assert_eq!(
                        topo.feeder(l.peer, l.entry),
                        Some((node, *port)),
                        "feeder inverts link at node {node} port {port}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_link_feeder_inverse() {
        assert_link_feeder_inverse(&Torus::net_4x4());
        assert_link_feeder_inverse(&Torus::new(2, 3));
    }

    #[test]
    fn mesh_edges_are_unwired() {
        let m = Mesh::new(4, 4);
        // Corner (0,0): no North, no West.
        assert_eq!(m.link(0, OutputPort::North), None);
        assert_eq!(m.link(0, OutputPort::West), None);
        assert_eq!(
            m.link(0, OutputPort::East).map(|l| l.peer),
            Some(1),
            "interior links survive"
        );
        assert_eq!(m.link(0, OutputPort::South).map(|l| l.peer), Some(4));
        // Interior node (1,1) = 5 keeps all four.
        for port in &OutputPort::ALL[..4] {
            assert!(m.link(5, *port).is_some());
        }
        assert_link_feeder_inverse(&m);
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let m = Mesh::new(4, 4);
        assert_eq!(Topology::distance(&m, 0, 3), 3, "no wraparound shortcut");
        assert_eq!(Topology::distance(&m, 0, 15), 6);
        assert_eq!(Topology::distance(&m, 5, 5), 0);
    }

    #[test]
    fn full_mesh_links_every_pair_exactly_once() {
        for n in 2..=FullMesh::MAX_NODES {
            let f = FullMesh::new(n);
            for a in 0..n {
                let mut peers: Vec<u16> = Vec::new();
                for port in &OutputPort::ALL[..4] {
                    if let Some(l) = f.link(a, *port) {
                        peers.push(l.peer);
                    }
                }
                let mut expect: Vec<u16> = (0..n).filter(|&b| b != a).collect();
                expect.sort_unstable();
                peers.sort_unstable();
                assert_eq!(peers, expect, "node {a} of {n}");
            }
            assert_link_feeder_inverse(&f);
        }
    }

    #[test]
    fn full_mesh_entry_port_is_not_the_opposite_direction() {
        // The property that forces the engines through the trait: on the
        // 5-node full mesh, node 0's port North (link 0) reaches node 1,
        // entering through node 1's input *North* (index of 0 in 1's
        // neighbour list) — not the grid opposite (South).
        let f = FullMesh::new(5);
        let l = f.link(0, OutputPort::North).unwrap();
        assert_eq!(l.peer, 1);
        assert_eq!(l.entry, InputPort::North);
        // And 4's link toward 0 leaves through port North but enters 0
        // through input West (4 is the 3rd other node of 0).
        assert_eq!(f.port_toward(4, 0), OutputPort::North);
        let l = f.link(4, OutputPort::North).unwrap();
        assert_eq!(l.peer, 0);
        assert_eq!(l.entry, InputPort::West);
    }

    #[test]
    fn full_mesh_distance_and_mean() {
        let f = FullMesh::new(5);
        assert_eq!(Topology::distance(&f, 0, 0), 0);
        assert_eq!(Topology::distance(&f, 0, 4), 1);
        // Mean over all pairs incl. self: 20/25.
        assert!((Topology::mean_uniform_distance(&f) - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "2..=5 nodes")]
    fn oversized_full_mesh_rejected() {
        let _ = FullMesh::new(6);
    }

    #[test]
    fn net_topology_labels() {
        assert_eq!(NetTopology::from(Torus::net_4x4()).label(), "4x4");
        assert_eq!(NetTopology::from(Mesh::new(8, 8)).label(), "mesh8x8");
        assert_eq!(NetTopology::from(FullMesh::new(5)).label(), "fullmesh5");
        assert_eq!(NetTopology::from(Mesh::new(4, 4)).grid(), Some((4, 4)));
        assert_eq!(NetTopology::from(FullMesh::new(3)).grid(), None);
    }

    #[test]
    fn default_link_latency_is_the_base() {
        let base = Tick::new(90);
        for topo in [
            NetTopology::from(Torus::net_4x4()),
            NetTopology::from(Mesh::new(4, 4)),
            NetTopology::from(FullMesh::new(4)),
        ] {
            for port in &OutputPort::ALL[..4] {
                assert_eq!(topo.link_latency(0, *port, base), base);
            }
        }
    }

    #[test]
    fn shard_map_partitions_evenly() {
        let t = Torus::net_4x4();
        let m = ShardMap::new(&t, 4);
        assert_eq!(m.shards(), 4);
        for s in 0..4 {
            assert_eq!(m.range(s).len(), 4);
        }
        assert_eq!(m.range(0), 0..4);
        assert_eq!(m.range(3), 12..16);
    }

    #[test]
    fn shard_map_uneven_remainder_goes_to_low_shards() {
        let t = Torus::net_4x4(); // 16 nodes
        let m = ShardMap::new(&t, 3); // 6 + 5 + 5
        assert_eq!(m.range(0), 0..6);
        assert_eq!(m.range(1), 6..11);
        assert_eq!(m.range(2), 11..16);
        for node in 0..t.nodes() {
            let s = m.shard_of(node);
            assert!(m.range(s).contains(&node));
        }
    }

    #[test]
    fn shard_map_clamps_degenerate_requests() {
        let t = Torus::net_4x4();
        assert_eq!(ShardMap::new(&t, 0).shards(), 1, "0 behaves as 1");
        assert_eq!(ShardMap::new(&t, 1).range(0), 0..16);
        let per_node = ShardMap::new(&t, 1000);
        assert_eq!(per_node.shards(), 16, "clamped to one router per shard");
        for s in 0..16 {
            assert_eq!(per_node.range(s).len(), 1);
        }
    }

    #[test]
    fn single_shard_has_no_cross_links() {
        let t = Torus::net_8x8();
        assert!(ShardMap::new(&t, 1).cross_shard_links(&t).is_empty());
    }
}
