//! 2D-torus geometry (§2.1, Figure 3).
//!
//! Nodes are numbered row-major; the four torus directions map to router
//! ports as **North = −y, South = +y, East = +x, West = −x**, all with
//! wraparound. A packet leaving router A through its North output arrives
//! at the node above, entering through that router's *South* input — every
//! link connects an output port to the opposite input port.

use arbitration::ports::{InputPort, OutputPort};

/// A `width × height` torus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    width: u16,
    height: u16,
}

impl Torus {
    /// Creates a torus.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are at least 2 (a 1-wide ring would
    /// make a direction its own opposite) and the node count fits `u16`.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width >= 2 && height >= 2, "torus needs at least 2x2 nodes");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32,
            "too many nodes"
        );
        Torus { width, height }
    }

    /// The paper's 16-processor network.
    pub fn net_4x4() -> Self {
        Torus::new(4, 4)
    }

    /// The paper's 64-processor network.
    pub fn net_8x8() -> Self {
        Torus::new(8, 8)
    }

    /// The §5.3 144-processor scaling network.
    pub fn net_12x12() -> Self {
        Torus::new(12, 12)
    }

    /// A 256-processor network (beyond the paper's studies; reachable
    /// with the sharded engine).
    pub fn net_16x16() -> Self {
        Torus::new(16, 16)
    }

    /// A 1024-processor network (sharded-engine scale).
    pub fn net_32x32() -> Self {
        Torus::new(32, 32)
    }

    /// Width (x extent).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Height (y extent).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.width * self.height
    }

    /// Node id of `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn node(&self, x: u16, y: u16) -> u16 {
        assert!(x < self.width && y < self.height, "coordinate out of range");
        y * self.width + x
    }

    /// Coordinates of a node id.
    pub fn coords(&self, node: u16) -> (u16, u16) {
        assert!(node < self.nodes(), "node {node} out of range");
        (node % self.width, node / self.width)
    }

    /// The neighbour reached through a torus output port.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is not a torus port.
    pub fn neighbor(&self, node: u16, dir: OutputPort) -> u16 {
        let (x, y) = self.coords(node);
        let (nx, ny) = match dir {
            OutputPort::North => (x, (y + self.height - 1) % self.height),
            OutputPort::South => (x, (y + 1) % self.height),
            OutputPort::East => ((x + 1) % self.width, y),
            OutputPort::West => ((x + self.width - 1) % self.width, y),
            _ => panic!("{dir} is not a torus direction"),
        };
        self.node(nx, ny)
    }

    /// The input port through which traffic sent via `dir` enters the
    /// neighbour (always the opposite side).
    pub fn entry_port(dir: OutputPort) -> InputPort {
        match dir {
            OutputPort::North => InputPort::South,
            OutputPort::South => InputPort::North,
            OutputPort::East => InputPort::West,
            OutputPort::West => InputPort::East,
            _ => panic!("{dir} is not a torus direction"),
        }
    }

    /// The output port that feeds an input port (inverse of
    /// [`Torus::entry_port`]): credits for input `p` return to the
    /// neighbour in `p`'s direction, through this port.
    pub fn feeder_port(input: InputPort) -> OutputPort {
        match input {
            InputPort::North => OutputPort::South,
            InputPort::South => OutputPort::North,
            InputPort::East => OutputPort::West,
            InputPort::West => OutputPort::East,
            _ => panic!("{input} is not a torus direction"),
        }
    }

    /// The torus direction of an input port (which neighbour it faces).
    pub fn input_direction(input: InputPort) -> OutputPort {
        match input {
            InputPort::North => OutputPort::North,
            InputPort::South => OutputPort::South,
            InputPort::East => OutputPort::East,
            InputPort::West => OutputPort::West,
            _ => panic!("{input} is not a torus direction"),
        }
    }

    /// Minimal hop distance between two nodes.
    pub fn distance(&self, a: u16, b: u16) -> u16 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ring_distance(ax, bx, self.width);
        let dy = ring_distance(ay, by, self.height);
        dx + dy
    }

    /// Average minimal hop distance over all (src, dest) pairs with
    /// uniform random destinations (used to sanity-check zero-load
    /// latencies against §4.3).
    pub fn mean_uniform_distance(&self) -> f64 {
        let n = self.nodes() as u32;
        let mut total = 0u64;
        for a in 0..self.nodes() {
            for b in 0..self.nodes() {
                total += self.distance(a, b) as u64;
            }
        }
        total as f64 / (n as f64 * n as f64)
    }
}

fn ring_distance(a: u16, b: u16, extent: u16) -> u16 {
    let d = (b + extent - a) % extent;
    d.min(extent - d)
}

/// A partition of a torus's routers into contiguous near-equal shards.
///
/// The sharded engine assigns each worker thread one shard. Shards are
/// contiguous node-id ranges (row-major order, so a shard is a band of
/// rows plus partial edge rows): contiguity is what lets the engine apply
/// deferred cross-shard events in ascending-source order by simply
/// visiting shards in index order. Sizes differ by at most one node, with
/// lower-indexed shards taking the remainder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// `bounds[s]..bounds[s + 1]` is shard `s`'s node range;
    /// `bounds[0] == 0` and `*bounds.last() == torus.nodes()`.
    bounds: Vec<u16>,
}

impl ShardMap {
    /// Partitions `torus` into `shards` contiguous node ranges. The
    /// request is clamped to `[1, nodes]` — asking for more shards than
    /// routers yields one single-node shard per router, and `0` is
    /// treated as 1 — so every shard is non-empty.
    pub fn new(torus: &Torus, shards: usize) -> Self {
        let nodes = torus.nodes() as usize;
        let shards = shards.clamp(1, nodes);
        let base = nodes / shards;
        let extra = nodes % shards;
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u16);
        let mut at = 0usize;
        for s in 0..shards {
            at += base + usize::from(s < extra);
            bounds.push(at as u16);
        }
        ShardMap { bounds }
    }

    /// Number of shards (≥ 1).
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The contiguous node-id range owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shards()`.
    pub fn range(&self, shard: usize) -> std::ops::Range<u16> {
        self.bounds[shard]..self.bounds[shard + 1]
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is outside the partitioned torus.
    pub fn shard_of(&self, node: u16) -> usize {
        assert!(
            node < *self.bounds.last().expect("bounds never empty"),
            "node {node} outside the shard map"
        );
        self.bounds.partition_point(|&b| b <= node) - 1
    }

    /// Every ordered pair `(a, b)` where `a` and `b` are distinct torus
    /// neighbours living in different shards — the links across which the
    /// sharded engine must exchange packets and credits. Each undirected
    /// cross-shard link appears exactly twice, once per direction, so the
    /// relation is symmetric by construction checks (and deduplicated:
    /// on a 2-extent ring both directions reach the same neighbour).
    pub fn cross_shard_links(&self, torus: &Torus) -> Vec<(u16, u16)> {
        use arbitration::ports::OutputPort::{East, North, South, West};
        let mut links = Vec::new();
        for node in 0..torus.nodes() {
            for dir in [North, South, East, West] {
                let peer = torus.neighbor(node, dir);
                if self.shard_of(node) != self.shard_of(peer) {
                    links.push((node, peer));
                }
            }
        }
        links.sort_unstable();
        links.dedup();
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_round_trip() {
        let t = Torus::net_8x8();
        for n in 0..t.nodes() {
            let (x, y) = t.coords(n);
            assert_eq!(t.node(x, y), n);
        }
    }

    #[test]
    fn neighbors_wrap() {
        let t = Torus::net_4x4();
        // Node 0 is (0,0): North wraps to (0,3) = 12, West wraps to (3,0).
        assert_eq!(t.neighbor(0, OutputPort::North), 12);
        assert_eq!(t.neighbor(0, OutputPort::West), 3);
        assert_eq!(t.neighbor(0, OutputPort::South), 4);
        assert_eq!(t.neighbor(0, OutputPort::East), 1);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let t = Torus::net_4x4();
        for n in 0..t.nodes() {
            for dir in [
                OutputPort::North,
                OutputPort::South,
                OutputPort::East,
                OutputPort::West,
            ] {
                let m = t.neighbor(n, dir);
                let back = Torus::feeder_port(Torus::entry_port(dir));
                assert_eq!(
                    t.neighbor(m, Torus::input_direction(Torus::entry_port(dir))),
                    n,
                    "walking back along the entry direction returns home"
                );
                assert_eq!(back, dir, "feeder/entry are inverses");
            }
        }
    }

    #[test]
    fn distances() {
        let t = Torus::net_4x4();
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.distance(0, 3), 1, "wraparound shortcut");
        assert_eq!(t.distance(0, 10), 4, "(0,0) to (2,2): 2+2");
        assert_eq!(t.distance(0, 5), 2);
        // Symmetric.
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn mean_uniform_distance_4x4() {
        // Each dimension of extent 4 has ring distances {0,1,2,1} => mean
        // 1.0; two dimensions => 2.0 expected hops.
        let t = Torus::net_4x4();
        assert!((t.mean_uniform_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a torus direction")]
    fn local_port_is_not_a_direction() {
        let t = Torus::net_4x4();
        let _ = t.neighbor(0, OutputPort::L0);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_torus_rejected() {
        let _ = Torus::new(1, 8);
    }

    #[test]
    fn shard_map_partitions_evenly() {
        let t = Torus::net_4x4();
        let m = ShardMap::new(&t, 4);
        assert_eq!(m.shards(), 4);
        for s in 0..4 {
            assert_eq!(m.range(s).len(), 4);
        }
        assert_eq!(m.range(0), 0..4);
        assert_eq!(m.range(3), 12..16);
    }

    #[test]
    fn shard_map_uneven_remainder_goes_to_low_shards() {
        let t = Torus::net_4x4(); // 16 nodes
        let m = ShardMap::new(&t, 3); // 6 + 5 + 5
        assert_eq!(m.range(0), 0..6);
        assert_eq!(m.range(1), 6..11);
        assert_eq!(m.range(2), 11..16);
        for node in 0..t.nodes() {
            let s = m.shard_of(node);
            assert!(m.range(s).contains(&node));
        }
    }

    #[test]
    fn shard_map_clamps_degenerate_requests() {
        let t = Torus::net_4x4();
        assert_eq!(ShardMap::new(&t, 0).shards(), 1, "0 behaves as 1");
        assert_eq!(ShardMap::new(&t, 1).range(0), 0..16);
        let per_node = ShardMap::new(&t, 1000);
        assert_eq!(per_node.shards(), 16, "clamped to one router per shard");
        for s in 0..16 {
            assert_eq!(per_node.range(s).len(), 1);
        }
    }

    #[test]
    fn single_shard_has_no_cross_links() {
        let t = Torus::net_8x8();
        assert!(ShardMap::new(&t, 1).cross_shard_links(&t).is_empty());
    }
}
