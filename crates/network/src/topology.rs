//! 2D-torus geometry (§2.1, Figure 3).
//!
//! Nodes are numbered row-major; the four torus directions map to router
//! ports as **North = −y, South = +y, East = +x, West = −x**, all with
//! wraparound. A packet leaving router A through its North output arrives
//! at the node above, entering through that router's *South* input — every
//! link connects an output port to the opposite input port.

use arbitration::ports::{InputPort, OutputPort};

/// A `width × height` torus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    width: u16,
    height: u16,
}

impl Torus {
    /// Creates a torus.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are at least 2 (a 1-wide ring would
    /// make a direction its own opposite) and the node count fits `u16`.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width >= 2 && height >= 2, "torus needs at least 2x2 nodes");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32,
            "too many nodes"
        );
        Torus { width, height }
    }

    /// The paper's 16-processor network.
    pub fn net_4x4() -> Self {
        Torus::new(4, 4)
    }

    /// The paper's 64-processor network.
    pub fn net_8x8() -> Self {
        Torus::new(8, 8)
    }

    /// The §5.3 144-processor scaling network.
    pub fn net_12x12() -> Self {
        Torus::new(12, 12)
    }

    /// Width (x extent).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Height (y extent).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.width * self.height
    }

    /// Node id of `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn node(&self, x: u16, y: u16) -> u16 {
        assert!(x < self.width && y < self.height, "coordinate out of range");
        y * self.width + x
    }

    /// Coordinates of a node id.
    pub fn coords(&self, node: u16) -> (u16, u16) {
        assert!(node < self.nodes(), "node {node} out of range");
        (node % self.width, node / self.width)
    }

    /// The neighbour reached through a torus output port.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is not a torus port.
    pub fn neighbor(&self, node: u16, dir: OutputPort) -> u16 {
        let (x, y) = self.coords(node);
        let (nx, ny) = match dir {
            OutputPort::North => (x, (y + self.height - 1) % self.height),
            OutputPort::South => (x, (y + 1) % self.height),
            OutputPort::East => ((x + 1) % self.width, y),
            OutputPort::West => ((x + self.width - 1) % self.width, y),
            _ => panic!("{dir} is not a torus direction"),
        };
        self.node(nx, ny)
    }

    /// The input port through which traffic sent via `dir` enters the
    /// neighbour (always the opposite side).
    pub fn entry_port(dir: OutputPort) -> InputPort {
        match dir {
            OutputPort::North => InputPort::South,
            OutputPort::South => InputPort::North,
            OutputPort::East => InputPort::West,
            OutputPort::West => InputPort::East,
            _ => panic!("{dir} is not a torus direction"),
        }
    }

    /// The output port that feeds an input port (inverse of
    /// [`Torus::entry_port`]): credits for input `p` return to the
    /// neighbour in `p`'s direction, through this port.
    pub fn feeder_port(input: InputPort) -> OutputPort {
        match input {
            InputPort::North => OutputPort::South,
            InputPort::South => OutputPort::North,
            InputPort::East => OutputPort::West,
            InputPort::West => OutputPort::East,
            _ => panic!("{input} is not a torus direction"),
        }
    }

    /// The torus direction of an input port (which neighbour it faces).
    pub fn input_direction(input: InputPort) -> OutputPort {
        match input {
            InputPort::North => OutputPort::North,
            InputPort::South => OutputPort::South,
            InputPort::East => OutputPort::East,
            InputPort::West => OutputPort::West,
            _ => panic!("{input} is not a torus direction"),
        }
    }

    /// Minimal hop distance between two nodes.
    pub fn distance(&self, a: u16, b: u16) -> u16 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ring_distance(ax, bx, self.width);
        let dy = ring_distance(ay, by, self.height);
        dx + dy
    }

    /// Average minimal hop distance over all (src, dest) pairs with
    /// uniform random destinations (used to sanity-check zero-load
    /// latencies against §4.3).
    pub fn mean_uniform_distance(&self) -> f64 {
        let n = self.nodes() as u32;
        let mut total = 0u64;
        for a in 0..self.nodes() {
            for b in 0..self.nodes() {
                total += self.distance(a, b) as u64;
            }
        }
        total as f64 / (n as f64 * n as f64)
    }
}

fn ring_distance(a: u16, b: u16, extent: u16) -> u16 {
    let d = (b + extent - a) % extent;
    d.min(extent - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_round_trip() {
        let t = Torus::net_8x8();
        for n in 0..t.nodes() {
            let (x, y) = t.coords(n);
            assert_eq!(t.node(x, y), n);
        }
    }

    #[test]
    fn neighbors_wrap() {
        let t = Torus::net_4x4();
        // Node 0 is (0,0): North wraps to (0,3) = 12, West wraps to (3,0).
        assert_eq!(t.neighbor(0, OutputPort::North), 12);
        assert_eq!(t.neighbor(0, OutputPort::West), 3);
        assert_eq!(t.neighbor(0, OutputPort::South), 4);
        assert_eq!(t.neighbor(0, OutputPort::East), 1);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let t = Torus::net_4x4();
        for n in 0..t.nodes() {
            for dir in [
                OutputPort::North,
                OutputPort::South,
                OutputPort::East,
                OutputPort::West,
            ] {
                let m = t.neighbor(n, dir);
                let back = Torus::feeder_port(Torus::entry_port(dir));
                assert_eq!(
                    t.neighbor(m, Torus::input_direction(Torus::entry_port(dir))),
                    n,
                    "walking back along the entry direction returns home"
                );
                assert_eq!(back, dir, "feeder/entry are inverses");
            }
        }
    }

    #[test]
    fn distances() {
        let t = Torus::net_4x4();
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.distance(0, 3), 1, "wraparound shortcut");
        assert_eq!(t.distance(0, 10), 4, "(0,0) to (2,2): 2+2");
        assert_eq!(t.distance(0, 5), 2);
        // Symmetric.
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn mean_uniform_distance_4x4() {
        // Each dimension of extent 4 has ring distances {0,1,2,1} => mean
        // 1.0; two dimensions => 2.0 expected hops.
        let t = Torus::net_4x4();
        assert!((t.mean_uniform_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a torus direction")]
    fn local_port_is_not_a_direction() {
        let t = Torus::net_4x4();
        let _ = t.neighbor(0, OutputPort::L0);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_torus_rejected() {
        let _ = Torus::new(1, 8);
    }
}
