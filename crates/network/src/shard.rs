//! Shard state: the per-worker slice of a simulation.
//!
//! Both network engines are built from the same [`Shard`]:
//!
//! * [`crate::sim::NetworkSim`] owns **one** shard covering every node
//!   and runs its phases inline;
//! * [`crate::sharded::ShardedNetworkSim`] owns one shard per worker
//!   thread and separates the phases with a barrier.
//!
//! A shard owns a contiguous node-id range of routers and endpoints
//! (see [`crate::topology::ShardMap`]), its own delivery wheel, idle-skip
//! wake array, and the order-insensitive measurement accumulators
//! (integer counters and the latency histogram, whose merges are exact).
//! Every cycle splits into:
//!
//! * **Phase A** ([`Shard::phase_a`]) — step the shard's routers, drain
//!   its due deliveries, let its endpoints inject. `Delivered` events are
//!   scheduled on the shard's own wheel immediately (a delivery is
//!   emitted by the destination's own router, so it never crosses a
//!   shard); `Forward`/`Credit` events are *deferred* to the caller's
//!   outbox, tagged with the emitting router.
//! * **Phase B** ([`Shard::apply`]) — apply the deferred events destined
//!   to this shard, in ascending `(source router, emission order)`
//!   sequence. This reproduces the order in which an engine that applies
//!   events inline inserts them into the destination's event wheel, and
//!   — because every event's effect tick lies strictly in the future —
//!   deferring the application to the end of the cycle is behaviorally
//!   invisible (the one-cycle-horizon argument; see DESIGN.md "Sharded
//!   engine").
//!
//! The only order-*sensitive* statistics — the Welford latency
//! accumulators, whose floating-point sums do not reassociate — are not
//! accumulated in the shard at all: phase A emits one [`MeasureRecord`]
//! per measured delivery, and the engine replays all shards' records
//! through [`replay_records`] in the canonical key order, reproducing the
//! single-threaded accumulation bit for bit.

use crate::fault::{Admission, DeadLinks, FaultPlane, RetryOutcome};
use crate::routing::route_for;
use crate::sim::{Endpoint, NetworkConfig, NodeCtx};
use crate::topology::{NetTopology, Topology};
use arbitration::ports::{InputPort, OutputPort};
use router::{IncomingPacket, Packet, Router, RouterOutput};
use simcore::stats::Histogram;
use simcore::wheel::TimingWheel;
use simcore::{SimRng, Tick};

/// Per-cycle constants shared by both phases of every shard.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CycleEnv {
    pub(crate) topology: NetTopology,
    pub(crate) now: Tick,
    pub(crate) cycle: u64,
    pub(crate) warmup_end: Tick,
    pub(crate) core_period: Tick,
    pub(crate) link_latency: Tick,
}

impl CycleEnv {
    pub(crate) fn at(cfg: &NetworkConfig, cycle: u64) -> Self {
        let core = cfg.router.timing.core;
        CycleEnv {
            topology: cfg.topology,
            now: core.edge(cycle),
            cycle,
            warmup_end: core.edge(cfg.warmup_cycles),
            core_period: core.period(),
            link_latency: cfg.router.timing.link_latency_ticks(),
        }
    }
}

/// A deferred cross-router event: a router's `Forward`/`Credit` output,
/// or a fault-plane link death that every shard must apply to its
/// [`DeadLinks`] replica.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ShardEvent {
    /// A router output (`Forward` or `Credit`), applied at its
    /// destination router's shard.
    Router(RouterOutput),
    /// The directed link leaving `node` through `output` died (retry
    /// exhaustion). Broadcast to *every* shard so all [`DeadLinks`]
    /// replicas update in the same canonical event position.
    LinkDead { node: u16, output: OutputPort },
}

/// A deferred event, tagged with the router that emitted it. Within one
/// outbox bucket, events keep their emission order; across buckets the
/// engine establishes ascending-source order by visiting source shards
/// in index order (shards are contiguous).
#[derive(Clone, Copy, Debug)]
pub(crate) struct OutEvent {
    pub(crate) src: u16,
    pub(crate) ev: ShardEvent,
}

/// The destination router of a deferred event: the link neighbour a
/// forward enters, or the upstream neighbour a credit returns to.
pub(crate) fn event_destination(topo: &NetTopology, src: u16, ev: &RouterOutput) -> u16 {
    match ev {
        RouterOutput::Forward(o) => {
            topo.link(src, o.output)
                .expect("forward along an unwired port")
                .peer
        }
        RouterOutput::Credit { input, .. } => {
            topo.feeder(src, *input)
                .expect("credit for an unwired input")
                .0
        }
        RouterOutput::Delivered { .. } => src,
    }
}

/// A pending delivery on a shard's wheel, carrying the canonical emission
/// key of the `Delivered` event that scheduled it.
#[derive(Debug)]
struct Delivery {
    node: u16,
    emit_cycle: u64,
    emit_seq: u32,
    packet: Packet,
}

/// One measured delivery, keyed for the canonical cross-shard replay.
///
/// The single-threaded engine records latencies in its global delivery
/// wheel's drain order: `(delivery tick, wheel insertion order)`, where
/// insertion order is `(emission cycle, emitting router, per-step
/// emission index)` — routers are stepped in id order within a cycle.
/// Sorting records by [`MeasureRecord::key`] therefore reconstructs the
/// exact global sequence from per-shard streams.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MeasureRecord {
    at: Tick,
    emit_cycle: u64,
    node: u16,
    emit_seq: u32,
    pub(crate) transit_ns: f64,
    pub(crate) total_ns: f64,
    /// Round-trip latency of the closed-loop transaction this delivery
    /// completed (`None` for deliveries that are not terminal replies).
    /// Riding the canonical replay keeps the per-transaction Welford
    /// accumulator bit-exact across engines and worker counts.
    pub(crate) txn_ns: Option<f64>,
}

impl MeasureRecord {
    fn key(&self) -> (u64, u64, u16, u32) {
        (
            self.at.as_ticks(),
            self.emit_cycle,
            self.node,
            self.emit_seq,
        )
    }
}

/// Sorts one cycle's measurement records into canonical order and replays
/// them through `record`, draining the buffer. Feeding each cycle's batch
/// (from any number of shards) through this reproduces the
/// single-threaded engine's floating-point accumulation bit for bit.
pub(crate) fn replay_records(
    records: &mut Vec<MeasureRecord>,
    latency: &mut simcore::stats::OnlineStats,
    total_latency: &mut simcore::stats::OnlineStats,
    txn_latency: &mut simcore::stats::OnlineStats,
) {
    records.sort_unstable_by_key(MeasureRecord::key);
    for r in records.drain(..) {
        latency.record(r.transit_ns);
        total_latency.record(r.total_ns);
        if let Some(txn_ns) = r.txn_ns {
            txn_latency.record(txn_ns);
        }
    }
}

/// The transaction-latency histogram every shard partial uses: a closed
/// -loop round trip is two network transits plus the 73 ns memory (or
/// L2) lookup plus source queueing, so the clamp sits 4× above the
/// packet-transit histogram; beyond-clamp round trips land in the
/// overflow bucket exactly like packet latencies.
pub(crate) fn txn_histogram() -> Histogram {
    Histogram::new(0.0, 8000.0, 200)
}

/// The per-worker slice of a simulation: routers, endpoints, deliveries,
/// idle-skip state and order-insensitive accumulators for one contiguous
/// node range.
pub(crate) struct Shard<E> {
    /// First node id of this shard's contiguous range.
    base: u16,
    pub(crate) routers: Vec<Router>,
    pub(crate) endpoints: Vec<E>,
    /// Pending deliveries for this shard's nodes, keyed by last-flit time.
    /// Deliveries never cross shards (the destination's own router emits
    /// them), so per-shard wheels drain in the same relative order the
    /// single global wheel would.
    deliveries: TimingWheel<Delivery>,
    delivery_scratch: Vec<(Tick, Delivery)>,
    scratch: Vec<RouterOutput>,
    /// Idle-skip: step a router only while it has work (see
    /// [`crate::sim::NetworkSim::set_idle_skip`]).
    idle_skip: bool,
    /// Per local router: `Tick::ZERO` while awake; otherwise the earliest
    /// tick at which it must be stepped again.
    wake_at: Vec<Tick>,
    pub(crate) skipped_steps: u64,
    pub(crate) injected_packets: u64,
    pub(crate) injected_flits: u64,
    pub(crate) measured_packets: u64,
    pub(crate) measured_flits: u64,
    /// Closed-loop transactions completed in the measurement window.
    pub(crate) measured_txns: u64,
    /// Transit-latency histogram partial (bin counts are integers, so
    /// shard partials merge exactly; see [`Histogram::merge`]).
    pub(crate) latency_hist: Histogram,
    /// Transaction round-trip latency histogram partial (merges exactly
    /// for the same reason).
    pub(crate) txn_latency_hist: Histogram,
    /// The fault plane, present only when fault injection is configured
    /// — `None` costs one branch per phase and guarantees zero RNG
    /// draws (the zero-fault tax pinned by `hot_path`).
    faults: Option<FaultPlane>,
    /// Every delivery to a local endpoint, warmup included — the
    /// forward-progress signal the watchdog monitors.
    pub(crate) delivered_all: u64,
}

impl<E: Endpoint> Shard<E> {
    /// Builds the shard owning nodes `base..base + endpoints.len()`.
    /// Router RNG streams are forked from the config seed by *global*
    /// node id, so the resulting simulation state is independent of the
    /// partition.
    pub(crate) fn new(cfg: &NetworkConfig, base: u16, endpoints: Vec<E>) -> Self {
        let root = SimRng::from_seed(cfg.seed);
        let routers: Vec<Router> = (0..endpoints.len() as u16)
            .map(|i| {
                let id = base + i;
                Router::new(id, cfg.router.clone(), root.fork(id as u64))
            })
            .collect();
        let faults = cfg.fault.injection_enabled().then(|| {
            FaultPlane::new(
                &cfg.fault,
                &cfg.topology,
                cfg.seed,
                cfg.router.timing.core.period(),
                cfg.router.timing.link_latency_ticks(),
                base,
                endpoints.len() as u16,
            )
        });
        Shard {
            base,
            deliveries: TimingWheel::new(cfg.router.timing.core.period(), 256),
            delivery_scratch: Vec::with_capacity(64),
            scratch: Vec::with_capacity(64),
            idle_skip: true,
            wake_at: vec![Tick::ZERO; routers.len()],
            skipped_steps: 0,
            injected_packets: 0,
            injected_flits: 0,
            measured_packets: 0,
            measured_flits: 0,
            measured_txns: 0,
            latency_hist: Histogram::new(0.0, 2000.0, 200),
            txn_latency_hist: txn_histogram(),
            faults,
            delivered_all: 0,
            routers,
            endpoints,
        }
    }

    /// Number of routers in this shard.
    pub(crate) fn len(&self) -> usize {
        self.routers.len()
    }

    /// First node id of the shard's range.
    pub(crate) fn base(&self) -> u16 {
        self.base
    }

    pub(crate) fn set_idle_skip(&mut self, enabled: bool) {
        self.idle_skip = enabled;
        if !enabled {
            self.wake_at.fill(Tick::ZERO);
        }
    }

    /// Undelivered packets still parked on the delivery wheel.
    pub(crate) fn pending_deliveries(&self) -> usize {
        self.deliveries.len()
    }

    /// The shard's fault plane, when fault injection is configured.
    pub(crate) fn faults(&self) -> Option<&FaultPlane> {
        self.faults.as_ref()
    }

    /// Packets this shard is responsible for that have not reached an
    /// endpoint: buffered in routers, parked on the delivery wheel, or
    /// held in link retransmit buffers. The watchdog pairs this with
    /// [`Shard::delivered_all`]: occupancy without delivery is a wedge.
    pub(crate) fn occupancy(&self) -> u64 {
        let buffered: u64 = self
            .routers
            .iter()
            .map(|r| r.accounted_packets() as u64)
            .sum();
        buffered
            + self.deliveries.len() as u64
            + self.faults.as_ref().map_or(0, |p| p.queued_packets)
    }

    /// Appends this shard's contribution to the watchdog's structured
    /// diagnostic dump: one line per router with occupancy and credit
    /// state, plus any interesting link-layer state.
    pub(crate) fn diagnostics(&self, out: &mut String) {
        use std::fmt::Write;
        for (i, r) in self.routers.iter().enumerate() {
            let node = self.base + i as u16;
            let _ = writeln!(out, "  router {node}: {}", r.diagnostics());
        }
        if let Some(plane) = &self.faults {
            plane.diagnostics(out);
        }
    }

    /// Phase A of one core cycle, in the same order the original
    /// single-threaded engine used:
    ///
    /// 1. routers arbitrate and emit events (skipping quiescent routers
    ///    until their wake tick — a skipped step would have been a
    ///    no-op); `Delivered` lands on the shard's wheel, everything else
    ///    goes to `emit`;
    /// 2. deliveries due now reach their endpoints, appending a
    ///    [`MeasureRecord`] per measured delivery;
    /// 3. endpoints generate new traffic.
    ///
    /// Endpoint decisions cannot observe the deferred events: injections
    /// check `free_space` on *local* input ports only, while forwards
    /// reserve torus-input slots, and a credit's effect tick lies cycles
    /// ahead — so deferring the application to [`Shard::apply`] after the
    /// barrier leaves phase A bit-identical to inline application.
    pub(crate) fn phase_a(
        &mut self,
        env: &CycleEnv,
        emit: &mut impl FnMut(u16, ShardEvent),
        records: &mut Vec<MeasureRecord>,
    ) {
        let now = env.now;
        // 0. Fault-plane cycle boundary: scheduled kills, flap machine
        // steps, due retry timers, staged refunds — all before any router
        // steps, in both engines.
        if let Some(plane) = self.faults.as_mut() {
            plane.begin_cycle(&env.topology, env.cycle, now);
        }
        // 1. Routers.
        let mut scratch = std::mem::take(&mut self.scratch);
        for i in 0..self.routers.len() {
            let src = self.base + i as u16;
            // Fault slot: runs for every local router — including
            // idle-skipped ones — so refunds, retries, and death events
            // hold their canonical per-source position.
            if self.faults.is_some() {
                self.fault_slot(env, i, emit);
            }
            if self.idle_skip && now < self.wake_at[i] {
                self.skipped_steps += 1;
                continue;
            }
            self.wake_at[i] = Tick::ZERO;
            scratch.clear();
            self.routers[i].step(now, &mut scratch);
            for (seq, ev) in scratch.drain(..).enumerate() {
                match ev {
                    RouterOutput::Delivered { packet, at, .. } => {
                        self.deliveries.schedule(
                            at,
                            Delivery {
                                node: src,
                                emit_cycle: env.cycle,
                                emit_seq: seq as u32,
                                packet,
                            },
                        );
                    }
                    other => emit(src, ShardEvent::Router(other)),
                }
            }
            if self.idle_skip {
                self.wake_at[i] = self.routers[i].next_work();
            }
        }
        self.scratch = scratch;

        // 2. Deliveries due now reach their endpoints.
        let mut due = std::mem::take(&mut self.delivery_scratch);
        due.clear();
        self.deliveries.drain_due(now, &mut due);
        for &(at, ref d) in &due {
            self.delivered_all += 1;
            let txn = self.endpoints[(d.node - self.base) as usize].on_delivered(&d.packet, at);
            if at >= env.warmup_end {
                let transit_ns = (at - d.packet.injected).as_ns();
                self.latency_hist.record(transit_ns);
                self.measured_packets += 1;
                self.measured_flits += d.packet.len() as u64;
                let txn_ns = txn.map(|t| (at - t.issued).as_ns());
                if let Some(txn_ns) = txn_ns {
                    self.measured_txns += 1;
                    self.txn_latency_hist.record(txn_ns);
                }
                records.push(MeasureRecord {
                    at,
                    emit_cycle: d.emit_cycle,
                    node: d.node,
                    emit_seq: d.emit_seq,
                    transit_ns,
                    total_ns: (at - d.packet.birth).as_ns(),
                    txn_ns,
                });
            }
        }
        self.delivery_scratch = due;

        // 3. Endpoints generate new traffic.
        for i in 0..self.routers.len() {
            let mut ctx = NodeCtx {
                router: &mut self.routers[i],
                topology: &env.topology,
                dead: match &self.faults {
                    Some(p) => &p.dead,
                    None => DeadLinks::empty(),
                },
                node: self.base + i as u16,
                now,
                core_period: env.core_period,
                injected_packets: &mut self.injected_packets,
                injected_flits: &mut self.injected_flits,
                woke: false,
            };
            self.endpoints[i].on_cycle(&mut ctx);
            if ctx.woke && self.idle_skip {
                // An injection is processed by the router on a later
                // edge; until then the router may stay asleep. Recompute
                // the wake exactly (a `min` against the previous value
                // could retain a stale earlier tick and trigger spurious
                // steps).
                self.wake_at[i] = self.routers[i].next_work();
            }
        }
    }

    /// The fault-plane slot of local router `i` in phase A: emit pending
    /// credit refunds, then fire due retransmit timers. Runs before the
    /// router's own step (and even when the step is idle-skipped), so
    /// every event it emits holds a deterministic per-source position.
    fn fault_slot(&mut self, env: &CycleEnv, i: usize, emit: &mut impl FnMut(u16, ShardEvent)) {
        let now = env.now;
        let src = self.base + i as u16;
        let plane = self.faults.as_mut().expect("fault_slot requires a plane");
        for r in plane.refunds_for(src) {
            debug_assert_eq!(r.node, src);
            emit(
                src,
                ShardEvent::Router(RouterOutput::Credit {
                    input: r.input,
                    vc: r.vc,
                    at: now,
                }),
            );
        }
        while let Some(key) = plane.next_due(src) {
            match plane.fire(key, now, env.core_period) {
                None | Some(RetryOutcome::Backoff) => {}
                Some(RetryOutcome::Deliver(tx)) => {
                    let entry = InputPort::from_index(key.1 as usize);
                    match route_for(&env.topology, &plane.dead, src, &tx.packet) {
                        Some(route) => {
                            plane.record_retransmit_latency(now, tx.first_pin);
                            self.routers[i].accept_packet(
                                entry,
                                IncomingPacket {
                                    packet: tx.packet,
                                    route,
                                    vc: tx.vc,
                                    pin_time: now,
                                    in_flit_period: tx.flit_period,
                                },
                            );
                            // `next_wake` captures whether this arrival
                            // makes the upcoming step (or a later one)
                            // meaningful — the same invariant the apply
                            // path maintains.
                            self.wake_at[i] = self.wake_at[i].min(self.routers[i].next_wake());
                        }
                        None => plane.drop_with_refund(src, entry, tx.vc),
                    }
                }
                Some(RetryOutcome::Exhausted { src: node, output }) => {
                    // Broadcast so every shard's DeadLinks replica (and
                    // our own) applies the death at the same canonical
                    // event position.
                    emit(src, ShardEvent::LinkDead { node, output });
                }
            }
        }
    }

    /// Phase B: applies one deferred event to its destination, which must
    /// lie in this shard (link deaths are broadcast and applied by every
    /// shard). The caller supplies events in ascending `(source router,
    /// emission order)` sequence.
    ///
    /// The `next_wake` minimum re-arms idle-skip: applying it here rather
    /// than at emission time is exact because the event's earliest effect
    /// tick is strictly later than the cycle that emitted it, so the
    /// destination's skip decisions up to and including that cycle are
    /// unchanged, and `min(next_work(before), next_wake(after)) ==
    /// next_work(after)` re-establishes the invariant for the cycles
    /// after.
    pub(crate) fn apply(&mut self, env: &CycleEnv, src: u16, ev: ShardEvent) {
        let ev = match ev {
            ShardEvent::Router(ev) => ev,
            ShardEvent::LinkDead { node, output } => {
                let plane = self
                    .faults
                    .as_mut()
                    .expect("link deaths require a fault plane");
                plane.kill_link(&env.topology, node, output);
                return;
            }
        };
        match ev {
            RouterOutput::Forward(o) => {
                let target = env
                    .topology
                    .link(src, o.output)
                    .expect("forward along an unwired port");
                let (neighbor, entry) = (target.peer, target.entry);
                let wire = env.topology.link_latency(src, o.output, env.link_latency);
                let pin_time = o.first_flit + wire;
                let local = (neighbor - self.base) as usize;
                let packet = if let Some(plane) = self.faults.as_mut() {
                    match plane.admit(
                        neighbor,
                        entry,
                        o.packet,
                        o.downstream_vc,
                        o.flit_period,
                        pin_time,
                        env.core_period,
                    ) {
                        Admission::Deliver(packet) => packet,
                        Admission::Held | Admission::Dropped => return,
                    }
                } else {
                    o.packet
                };
                let dead = match &self.faults {
                    Some(p) => &p.dead,
                    None => DeadLinks::empty(),
                };
                let Some(route) = route_for(&env.topology, dead, neighbor, &packet) else {
                    self.faults
                        .as_mut()
                        .expect("routes only fail once links have died")
                        .drop_with_refund(neighbor, entry, o.downstream_vc);
                    return;
                };
                self.routers[local].accept_packet(
                    entry,
                    IncomingPacket {
                        packet,
                        route,
                        vc: o.downstream_vc,
                        pin_time,
                        in_flit_period: o.flit_period,
                    },
                );
                self.wake_at[local] = self.wake_at[local].min(self.routers[local].next_wake());
            }
            RouterOutput::Credit { input, vc, at } => {
                let (upstream, output) = env
                    .topology
                    .feeder(src, input)
                    .expect("credit for an unwired input");
                let local = (upstream - self.base) as usize;
                let wire = env
                    .topology
                    .link_latency(upstream, output, env.link_latency);
                self.routers[local].accept_credit(output, vc, at + wire);
                self.wake_at[local] = self.wake_at[local].min(self.routers[local].next_wake());
            }
            RouterOutput::Delivered { .. } => {
                unreachable!("deliveries are scheduled in phase A and never deferred")
            }
        }
    }
}
