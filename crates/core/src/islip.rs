//! iSLIP — iterative round-robin matching with slip (McKeown), plus the
//! plain round-robin matcher it improves on.
//!
//! The paper's five algorithms predate the input-queued-switch scheduling
//! literature's modern reference point: **iSLIP**, the iterative
//! round-robin algorithm used in commercial crossbar schedulers. Like PIM
//! it runs grant/accept rounds, but both steps use *rotating pointers*
//! instead of random draws:
//!
//! 1. **Request.** Every unmatched input requests every unmatched output
//!    it has a packet for.
//! 2. **Grant.** Each unmatched output grants the requesting input at or
//!    after its *grant pointer* (round-robin order).
//! 3. **Accept.** Each input that received grants accepts the output at
//!    or after its *accept pointer*.
//!
//! The defining subtlety — the "slip" — is the pointer-update rule:
//! **pointers advance only past a grant that was accepted, and only in
//! the first iteration**. An output whose grant is refused keeps pointing
//! at the same input and wins it in a later cycle, so under sustained
//! load the grant pointers *desynchronize*: each output settles on a
//! different input and the matcher converges to a full permutation
//! (100% throughput on persistent uniform traffic — see the
//! `desynchronization_reaches_full_throughput` test).
//!
//! [`IslipArbiter::round_robin_matcher`] builds the degenerate baseline
//! this rule fixes: identical grant/accept phases but pointers that
//! advance past every grant, accepted or not. Under saturation its
//! pointers move in lock-step and the matching collapses to one grant
//! per cycle — the classic synchronization pathology.
//!
//! Unlike PIM, both variants are fully deterministic: given the same
//! request sequence they produce the same matchings, which makes them
//! cheap in hardware (no RNG) and convenient in the windowed router
//! driver (no RNG stream perturbation).

use crate::matching::Matching;
use crate::matrix::{RequestMatrix, MAX_DIM};
use crate::policy::round_robin_first;

/// When a grant/accept pointer advances past the slot it granted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointerUpdate {
    /// Only past grants accepted in the first iteration (iSLIP's rule —
    /// the property behind pointer desynchronization).
    OnAccept,
    /// Past every grant, accepted or not (the plain round-robin matcher;
    /// prone to pointer synchronization under load).
    Always,
}

/// An iSLIP (or plain round-robin) matcher with persistent pointers.
#[derive(Clone, Debug)]
pub struct IslipArbiter {
    rows: usize,
    cols: usize,
    iterations: usize,
    update: PointerUpdate,
    /// Per output column: the input row with current grant priority.
    grant_ptr: Vec<u32>,
    /// Per input row: the output column with current accept priority.
    accept_ptr: Vec<u32>,
}

impl IslipArbiter {
    /// An iSLIP instance over a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or exceeds 32, or `iterations == 0`.
    pub fn islip(rows: usize, cols: usize, iterations: usize) -> Self {
        IslipArbiter::new(rows, cols, iterations, PointerUpdate::OnAccept)
    }

    /// The plain parallel round-robin matcher baseline (single iteration,
    /// pointers always advance).
    pub fn round_robin_matcher(rows: usize, cols: usize) -> Self {
        IslipArbiter::new(rows, cols, 1, PointerUpdate::Always)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or exceeds 32, or `iterations == 0`.
    pub fn new(rows: usize, cols: usize, iterations: usize, update: PointerUpdate) -> Self {
        assert!(rows > 0 && rows <= MAX_DIM, "rows out of range: {rows}");
        assert!(cols > 0 && cols <= MAX_DIM, "cols out of range: {cols}");
        assert!(iterations > 0, "iSLIP needs at least one iteration");
        IslipArbiter {
            rows,
            cols,
            iterations,
            update,
            grant_ptr: vec![0; cols],
            accept_ptr: vec![0; rows],
        }
    }

    /// Iteration count.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The pointer-update rule in force.
    pub fn pointer_update(&self) -> PointerUpdate {
        self.update
    }

    /// Display name used in figure output.
    pub fn label(&self) -> &'static str {
        match (self.update, self.iterations) {
            (PointerUpdate::Always, _) => "RR",
            (PointerUpdate::OnAccept, 1) => "iSLIP1",
            (PointerUpdate::OnAccept, 2) => "iSLIP2",
            (PointerUpdate::OnAccept, 3) => "iSLIP3",
            (PointerUpdate::OnAccept, _) => "iSLIP",
        }
    }

    /// Runs one arbitration pass and updates the pointers.
    ///
    /// Iterations after the matching stops growing are skipped (iSLIP
    /// never revokes a match, so an empty grant phase is terminal).
    ///
    /// # Panics
    ///
    /// Panics if the request matrix shape differs from the arbiter's.
    pub fn arbitrate(&mut self, req: &RequestMatrix) -> Matching {
        assert_eq!(req.rows(), self.rows, "request rows mismatch");
        assert_eq!(req.cols(), self.cols, "request cols mismatch");
        let mut m = Matching::empty(self.rows, self.cols);
        // The transpose is invariant across iterations; only the matched
        // sets change.
        let col_masks = req.col_masks();
        for iter in 0..self.iterations {
            let matched_rows = m.matched_rows();
            let matched_cols = m.matched_cols();

            // Grant: each unmatched output points one requesting input.
            // grants[r] = mask of columns granting row r; granted_row[c]
            // remembers each column's choice for the pointer update.
            let mut grants = [0u32; MAX_DIM];
            let mut granted_row = [usize::MAX; MAX_DIM];
            let mut any_grant = false;
            for (c, slot) in granted_row.iter_mut().enumerate().take(self.cols) {
                if matched_cols & (1 << c) != 0 {
                    continue;
                }
                let requesters = col_masks[c] & !matched_rows;
                if requesters == 0 {
                    continue;
                }
                let r = round_robin_first(requesters, self.grant_ptr[c]);
                grants[r] |= 1 << c;
                *slot = r;
                any_grant = true;
            }
            if !any_grant {
                break;
            }

            // Accept: each granted input picks one column round-robin.
            for (r, &g) in grants.iter().enumerate().take(self.rows) {
                if g == 0 {
                    continue;
                }
                let c = round_robin_first(g, self.accept_ptr[r]);
                m.grant(r, c);
                if self.update == PointerUpdate::OnAccept && iter == 0 {
                    // The slip: advance only past an accepted first-round
                    // grant.
                    self.grant_ptr[c] = ((r + 1) % self.rows) as u32;
                    self.accept_ptr[r] = ((c + 1) % self.cols) as u32;
                }
            }
            if self.update == PointerUpdate::Always {
                // Plain round-robin: every pointer that acted moves on,
                // accepted or not.
                for (c, &gr) in granted_row.iter().enumerate().take(self.cols) {
                    if gr != usize::MAX {
                        self.grant_ptr[c] = ((gr + 1) % self.rows) as u32;
                    }
                }
                for (r, &g) in grants.iter().enumerate().take(self.rows) {
                    if g != 0 {
                        let c = m.output_of(r).expect("granted row accepted one column");
                        self.accept_ptr[r] = ((c + 1) % self.cols) as u32;
                    }
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcm;
    use simcore::SimRng;

    fn random_req(rng: &mut SimRng, rows: usize, cols: usize) -> RequestMatrix {
        let masks: Vec<u32> = (0..rows)
            .map(|_| rng.next_u32() & ((1u32 << cols) - 1))
            .collect();
        RequestMatrix::from_rows(masks, cols)
    }

    #[test]
    fn matchings_are_valid_and_bounded_by_mcm() {
        let mut rng = SimRng::from_seed(81);
        for iters in 1..=3 {
            let mut islip = IslipArbiter::islip(16, 7, iters);
            for _ in 0..200 {
                let req = random_req(&mut rng, 16, 7);
                let upper = mcm::maximum_matching(&req).cardinality();
                let m = islip.arbitrate(&req);
                assert!(m.is_valid_for(&req), "iSLIP{iters} invalid on {req:?}");
                assert!(m.cardinality() <= upper, "iSLIP{iters} beat MCM");
            }
        }
    }

    #[test]
    fn round_robin_matcher_is_valid() {
        let mut rng = SimRng::from_seed(82);
        let mut rr = IslipArbiter::round_robin_matcher(16, 7);
        for _ in 0..200 {
            let req = random_req(&mut rng, 16, 7);
            let m = rr.arbitrate(&req);
            assert!(m.is_valid_for(&req));
        }
    }

    #[test]
    fn deterministic_given_same_requests() {
        let mut gen = SimRng::from_seed(83);
        let reqs: Vec<RequestMatrix> = (0..50).map(|_| random_req(&mut gen, 16, 7)).collect();
        let run = |mut a: IslipArbiter| -> Vec<usize> {
            reqs.iter().map(|r| a.arbitrate(r).cardinality()).collect()
        };
        assert_eq!(
            run(IslipArbiter::islip(16, 7, 2)),
            run(IslipArbiter::islip(16, 7, 2))
        );
    }

    #[test]
    fn more_iterations_never_hurt_on_average() {
        let mut gen = SimRng::from_seed(84);
        let mut i1 = IslipArbiter::islip(16, 7, 1);
        let mut i3 = IslipArbiter::islip(16, 7, 3);
        let (mut s1, mut s3) = (0usize, 0usize);
        for _ in 0..300 {
            let req = random_req(&mut gen, 16, 7);
            s1 += i1.arbitrate(&req).cardinality();
            s3 += i3.arbitrate(&req).cardinality();
        }
        assert!(s3 > s1, "iSLIP3 ({s3}) should out-match iSLIP1 ({s1})");
    }

    #[test]
    fn desynchronization_reaches_full_throughput() {
        // The defining iSLIP property: under persistent all-ones requests
        // on an N×N switch, the grant pointers desynchronize within N
        // slots and every later slot yields a full N-matching.
        let req = RequestMatrix::from_rows(vec![0b1111; 4], 4);
        let mut islip = IslipArbiter::islip(4, 4, 1);
        let warmup: Vec<usize> = (0..4)
            .map(|_| islip.arbitrate(&req).cardinality())
            .collect();
        assert_eq!(warmup, vec![1, 2, 3, 4], "one new output desyncs per slot");
        for slot in 0..32 {
            assert_eq!(
                islip.arbitrate(&req).cardinality(),
                4,
                "slot {slot} lost the full matching"
            );
        }
    }

    #[test]
    fn plain_round_robin_synchronizes_under_saturation() {
        // The baseline's pathology: pointers advance in lock-step, so the
        // same saturating workload never matches more than one pair.
        let req = RequestMatrix::from_rows(vec![0b1111; 4], 4);
        let mut rr = IslipArbiter::round_robin_matcher(4, 4);
        for slot in 0..16 {
            assert_eq!(
                rr.arbitrate(&req).cardinality(),
                1,
                "slot {slot}: RR pointers must stay synchronized"
            );
        }
    }

    #[test]
    fn pointer_holds_on_refused_grant() {
        // One row requesting both columns: row 0 accepts column 0, so
        // column 1's grant is refused and (OnAccept) its pointer must not
        // move — the refused output wins the same row on the next pass.
        let both = RequestMatrix::from_rows(vec![0b11], 2);
        let mut islip = IslipArbiter::islip(1, 2, 1);
        let m = islip.arbitrate(&both);
        assert_eq!(m.output_of(0), Some(0), "accept pointer starts at col 0");
        // Column 1's grant was refused, so its pointer still targets row 0
        // and a column-1-only request matches immediately.
        let only1 = RequestMatrix::from_rows(vec![0b10], 2);
        let m = islip.arbitrate(&only1);
        assert_eq!(m.output_of(0), Some(1));
    }

    #[test]
    fn single_iteration_can_be_non_maximal_but_converged_is_close() {
        // iSLIP1 leaves grant collisions unresolved within the pass;
        // three iterations recover nearly all of them.
        let mut gen = SimRng::from_seed(85);
        let mut i3 = IslipArbiter::islip(16, 7, 3);
        let trials = 200;
        let mut maximal = 0;
        for _ in 0..trials {
            let req = random_req(&mut gen, 16, 7);
            let m = i3.arbitrate(&req);
            if m.is_maximal_for(&req) {
                maximal += 1;
            }
        }
        assert!(maximal > trials * 9 / 10, "only {maximal}/{trials} maximal");
    }

    #[test]
    fn empty_requests_empty_matching() {
        let req = RequestMatrix::new(4, 4);
        let mut islip = IslipArbiter::islip(4, 4, 2);
        assert_eq!(islip.arbitrate(&req).cardinality(), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(IslipArbiter::islip(4, 4, 1).label(), "iSLIP1");
        assert_eq!(IslipArbiter::islip(4, 4, 2).label(), "iSLIP2");
        assert_eq!(IslipArbiter::islip(4, 4, 3).label(), "iSLIP3");
        assert_eq!(IslipArbiter::islip(4, 4, 5).label(), "iSLIP");
        assert_eq!(IslipArbiter::round_robin_matcher(4, 4).label(), "RR");
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = IslipArbiter::islip(4, 4, 0);
    }

    #[test]
    #[should_panic(expected = "request rows mismatch")]
    fn shape_mismatch_rejected() {
        let req = RequestMatrix::new(3, 4);
        let _ = IslipArbiter::islip(4, 4, 1).arbitrate(&req);
    }
}
