//! Output-port selection policies, including the Rotary Rule (§3.4).
//!
//! When several input arbiters nominate packets to the same output port,
//! the output arbiter must pick one. The paper lists the design space —
//! random, round-robin, least-recently selected, priority chains, or the
//! Rotary Rule — and uses:
//!
//! * **random** inside PIM's grant/accept steps (§3.1),
//! * **least-recently selected (LRS)** for SPAA-base (§3.3 step 2),
//! * **Rotary Rule, then LRS** for SPAA-rotary: "output port arbiters
//!   select packets nominated by the input port arbiters for the network
//!   ports before they select packets from the local ports. Within the
//!   network ports, we use least-recently used selection" (§3.4).
//!
//! A [`Selector`] holds one output port's policy state and picks one row
//! from a requester mask.

use simcore::SimRng;

/// The first set bit of `pool` at or after `ptr`, wrapping — the shared
/// round-robin primitive behind [`SelectionPolicy::RoundRobin`], the
/// iSLIP grant/accept pointers ([`crate::islip`]), and the weighted
/// kernels' tie-breaks ([`crate::lqf`], [`crate::ocf`]).
///
/// Branch-free rotate-and-`trailing_zeros` kernel: rotating the pool right
/// by `ptr` renames bit `ptr` to bit 0, so the priority-encode is a single
/// count-trailing-zeros, and the rename is undone by adding `ptr` back
/// modulo the mask width. This is the mask-based formulation of a
/// programmable-priority round-robin arbiter (the same rotate/encode/
/// counter-rotate structure hardware designs use); the exhaustive
/// `matches_linear_scan_reference` test pins it bit-exact against the
/// naive linear scan over every 8-bit pool × every pointer position.
///
/// # Panics
///
/// Panics (in debug builds) if `pool == 0`.
#[inline]
pub fn round_robin_first(pool: u32, ptr: u32) -> usize {
    debug_assert!(pool != 0, "round-robin pick from an empty pool");
    let ptr = ptr & 31;
    let rotated = pool.rotate_right(ptr);
    ((rotated.trailing_zeros() + ptr) & 31) as usize
}

/// Which base policy a [`Selector`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Uniformly random among requesters (PIM's choice).
    Random,
    /// Rotating pointer; pick the first requester at or after the pointer,
    /// then advance the pointer past it.
    RoundRobin,
    /// Least-recently selected requester wins (SPAA-base's choice).
    LeastRecentlySelected,
}

/// Whether the Rotary Rule pre-filter is applied before the base policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RotaryMode {
    /// No prioritization: all requesters compete directly.
    Off,
    /// Requesters on network (torus) input rows are served before local
    /// rows; ties within the preferred class fall through to the base
    /// policy. This is the §3.4 prioritization that keeps a saturated
    /// network draining ("vehicles in the rotary exit before vehicles may
    /// enter").
    On,
}

/// One output arbiter's selection state.
///
/// # Example
///
/// ```
/// use arbitration::policy::{RotaryMode, SelectionPolicy, Selector};
/// use arbitration::ports::NETWORK_ROW_MASK;
/// use simcore::SimRng;
///
/// let mut rng = SimRng::from_seed(1);
/// let mut sel = Selector::new(SelectionPolicy::LeastRecentlySelected, RotaryMode::On,
///                             NETWORK_ROW_MASK, 16);
/// // Rows 8 (cache) and 3 (torus) both request: the rotary rule picks 3.
/// assert_eq!(sel.select(1 << 8 | 1 << 3, &mut rng), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Selector {
    policy: SelectionPolicy,
    rotary: RotaryMode,
    network_rows: u32,
    rows: usize,
    rr_ptr: u32,
    /// LRS recency stamps: larger = selected more recently.
    stamps: Vec<u64>,
    clock: u64,
}

impl Selector {
    /// Creates a selector for an output arbiter over `rows` requester rows.
    ///
    /// `network_rows` is the mask of rows fed by torus input ports (used
    /// only when `rotary` is [`RotaryMode::On`]).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is 0 or exceeds 32.
    pub fn new(
        policy: SelectionPolicy,
        rotary: RotaryMode,
        network_rows: u32,
        rows: usize,
    ) -> Self {
        assert!(rows > 0 && rows <= 32, "rows out of range: {rows}");
        Selector {
            policy,
            rotary,
            network_rows,
            rows,
            rr_ptr: 0,
            stamps: vec![0; rows],
            clock: 0,
        }
    }

    /// The base policy.
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// Whether the rotary pre-filter is active.
    pub fn rotary(&self) -> RotaryMode {
        self.rotary
    }

    /// Picks one requester row from a nonzero mask and updates policy
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `requesters == 0` or contains bits at or above `rows`.
    pub fn select(&mut self, requesters: u32, rng: &mut SimRng) -> usize {
        assert!(requesters != 0, "select with no requesters");
        assert!(
            self.rows == 32 || requesters < (1u32 << self.rows),
            "requester mask out of range"
        );
        let pool = match self.rotary {
            RotaryMode::On => {
                let net = requesters & self.network_rows;
                if net != 0 {
                    net
                } else {
                    requesters
                }
            }
            RotaryMode::Off => requesters,
        };
        let row = match self.policy {
            SelectionPolicy::Random => rng.pick_bit(pool) as usize,
            SelectionPolicy::RoundRobin => self.round_robin(pool),
            SelectionPolicy::LeastRecentlySelected => self.least_recent(pool),
        };
        self.note_selected(row);
        row
    }

    /// Records that `row` was selected (exposed so timing models that make
    /// the choice elsewhere can keep LRS state coherent).
    pub fn note_selected(&mut self, row: usize) {
        self.clock += 1;
        self.stamps[row] = self.clock;
        self.rr_ptr = ((row as u32) + 1) % self.rows as u32;
    }

    fn round_robin(&self, pool: u32) -> usize {
        round_robin_first(pool, self.rr_ptr)
    }

    fn least_recent(&self, pool: u32) -> usize {
        let mut best = usize::MAX;
        let mut best_stamp = u64::MAX;
        let mut m = pool;
        while m != 0 {
            let row = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.stamps[row] < best_stamp {
                best_stamp = self.stamps[row];
                best = row;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::NETWORK_ROW_MASK;

    fn rng() -> SimRng {
        SimRng::from_seed(7)
    }

    fn lrs(rotary: RotaryMode) -> Selector {
        Selector::new(
            SelectionPolicy::LeastRecentlySelected,
            rotary,
            NETWORK_ROW_MASK,
            16,
        )
    }

    #[test]
    fn lrs_cycles_through_contenders() {
        let mut s = lrs(RotaryMode::Off);
        let mut r = rng();
        let contenders = 0b1011u32; // rows 0,1,3
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.push(s.select(contenders, &mut r));
        }
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![0, 1, 3],
            "each contender served once before repeats"
        );
        // Fourth pick starts the cycle again.
        let fourth = s.select(contenders, &mut r);
        assert!(contenders & (1 << fourth) != 0);
    }

    #[test]
    fn lrs_prefers_never_selected() {
        let mut s = lrs(RotaryMode::Off);
        let mut r = rng();
        assert_eq!(s.select(0b0001, &mut r), 0);
        assert_eq!(s.select(0b0011, &mut r), 1, "row 1 never selected yet");
        assert_eq!(s.select(0b0011, &mut r), 0, "row 0 now older");
    }

    #[test]
    fn rotary_prefers_network_rows() {
        let mut s = lrs(RotaryMode::On);
        let mut r = rng();
        // Cache row 8 and torus row 5 compete: torus wins regardless of LRS.
        for _ in 0..5 {
            assert_eq!(s.select((1 << 8) | (1 << 5), &mut r), 5);
        }
        // With only local rows requesting, they are served normally.
        assert_eq!(s.select(1 << 8, &mut r), 8);
    }

    #[test]
    fn rotary_uses_lrs_within_network_class() {
        let mut s = lrs(RotaryMode::On);
        let mut r = rng();
        let pool = (1 << 2) | (1 << 6); // two torus rows
        let first = s.select(pool, &mut r);
        let second = s.select(pool, &mut r);
        assert_ne!(first, second, "LRS alternates within the network class");
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Selector::new(SelectionPolicy::RoundRobin, RotaryMode::Off, 0, 4);
        let mut r = rng();
        let pool = 0b1111u32;
        let picks: Vec<usize> = (0..8).map(|_| s.select(pool, &mut r)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_skips_non_requesters() {
        let mut s = Selector::new(SelectionPolicy::RoundRobin, RotaryMode::Off, 0, 8);
        let mut r = rng();
        assert_eq!(s.select(0b0100_0001, &mut r), 0);
        // Pointer is now 1; next requester at/after 1 is row 6.
        assert_eq!(s.select(0b0100_0001, &mut r), 6);
        // Pointer wraps past 7 back to row 0.
        assert_eq!(s.select(0b0100_0001, &mut r), 0);
    }

    #[test]
    fn random_is_valid_and_covers_pool() {
        let mut s = Selector::new(SelectionPolicy::Random, RotaryMode::Off, 0, 16);
        let mut r = rng();
        let pool = 0b1010_0101u32;
        let mut hit = 0u32;
        for _ in 0..200 {
            let row = s.select(pool, &mut r);
            assert!(pool & (1 << row) != 0);
            hit |= 1 << row;
        }
        assert_eq!(hit, pool, "all requesters eventually selected");
    }

    #[test]
    #[should_panic(expected = "no requesters")]
    fn empty_pool_panics() {
        let mut s = lrs(RotaryMode::Off);
        let _ = s.select(0, &mut rng());
    }

    #[test]
    fn round_robin_first_wraps_and_masks_pointer() {
        assert_eq!(round_robin_first(0b0100_0001, 0), 0);
        assert_eq!(round_robin_first(0b0100_0001, 1), 6);
        assert_eq!(round_robin_first(0b0100_0001, 7), 0, "wraps past the top");
        // Pointers beyond 31 behave modulo the mask width.
        assert_eq!(round_robin_first(0b0100_0001, 33), 6);
    }

    /// The reference implementation the mask kernel replaced: walk the
    /// positions one by one starting at `ptr`, wrapping, and return the
    /// first set bit.
    fn linear_scan_reference(pool: u32, ptr: u32) -> usize {
        assert!(pool != 0);
        let mut pos = (ptr % 32) as usize;
        loop {
            if pool & (1 << pos) != 0 {
                return pos;
            }
            pos = (pos + 1) % 32;
        }
    }

    #[test]
    fn matches_linear_scan_reference() {
        // Exhaustive over every non-empty 8-bit pool at every bit offset
        // within the 32-bit word, for every pointer position including the
        // wrapped range above 31 — the bit-exact pin for the rotate-and-
        // trailing_zeros kernel.
        for bits in 1u32..=255 {
            for shift in [0u32, 7, 13, 24] {
                let pool = bits.rotate_left(shift);
                for ptr in 0..64u32 {
                    assert_eq!(
                        round_robin_first(pool, ptr),
                        linear_scan_reference(pool, ptr),
                        "pool={pool:#034b} ptr={ptr}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_requester_fast_path() {
        for policy in [
            SelectionPolicy::Random,
            SelectionPolicy::RoundRobin,
            SelectionPolicy::LeastRecentlySelected,
        ] {
            let mut s = Selector::new(policy, RotaryMode::Off, 0, 16);
            assert_eq!(s.select(1 << 11, &mut rng()), 11);
        }
    }
}
