//! Canonical port naming for the Alpha 21364 router (§2.1 "Ports").
//!
//! The router has **eight input ports** — four 2D-torus ports (north,
//! south, east, west), one cache port, two memory-controller ports and one
//! I/O port — and **seven output ports** — the four torus ports, two
//! memory-controller/"local" ports (which inside the processor are also
//! tied to the cache, so there is no separate cache output) and one I/O
//! port.
//!
//! Each input port's buffer has **two read ports**, each with its own input
//! arbiter, so the arbitration problem has 16 rows; the row order matches
//! Figure 5 of the paper (`L-N rp0`, `L-N rp1`, `L-S rp0`, …, `L-I/O rp1`).

use std::fmt;

/// Number of router input ports.
pub const NUM_INPUT_PORTS: usize = 8;
/// Number of router output ports.
pub const NUM_OUTPUT_PORTS: usize = 7;
/// Buffer read ports (and hence input arbiters) per input port.
pub const READ_PORTS_PER_INPUT: usize = 2;
/// Total input arbiter rows in the connection matrix (16 in the 21364).
pub const NUM_ARBITER_ROWS: usize = NUM_INPUT_PORTS * READ_PORTS_PER_INPUT;

/// An input port of the 21364 router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum InputPort {
    /// Torus link from the north neighbour.
    North = 0,
    /// Torus link from the south neighbour.
    South = 1,
    /// Torus link from the east neighbour.
    East = 2,
    /// Torus link from the west neighbour.
    West = 3,
    /// The processor's cache port (sources cache-miss requests).
    Cache = 4,
    /// Memory controller 0 (sources responses to cache-miss requests).
    Mc0 = 5,
    /// Memory controller 1.
    Mc1 = 6,
    /// The I/O port.
    Io = 7,
}

impl InputPort {
    /// All input ports in Figure 5 row order.
    pub const ALL: [InputPort; NUM_INPUT_PORTS] = [
        InputPort::North,
        InputPort::South,
        InputPort::East,
        InputPort::West,
        InputPort::Cache,
        InputPort::Mc0,
        InputPort::Mc1,
        InputPort::Io,
    ];

    /// Index in `0..8`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Constructs from an index in `0..8`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// True for the four torus (interprocessor network) input ports.
    ///
    /// The Rotary Rule (§3.4) prioritizes packets arriving on these ports
    /// over packets injected from the local (cache/MC/I-O) ports.
    #[inline]
    pub const fn is_network(self) -> bool {
        (self as usize) < 4
    }

    /// True for the local processor-side ports (cache, MC0, MC1, I/O).
    #[inline]
    pub const fn is_local(self) -> bool {
        !self.is_network()
    }
}

impl fmt::Display for InputPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InputPort::North => "L-N",
            InputPort::South => "L-S",
            InputPort::East => "L-E",
            InputPort::West => "L-W",
            InputPort::Cache => "L-Cache",
            InputPort::Mc0 => "L-MC0",
            InputPort::Mc1 => "L-MC1",
            InputPort::Io => "L-I/O",
        };
        f.write_str(s)
    }
}

/// An output port of the 21364 router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum OutputPort {
    /// Torus link toward the north neighbour.
    North = 0,
    /// Torus link toward the south neighbour.
    South = 1,
    /// Torus link toward the east neighbour.
    East = 2,
    /// Torus link toward the west neighbour.
    West = 3,
    /// Local port 0 (memory controller 0, also tied to the cache).
    L0 = 4,
    /// Local port 1 (memory controller 1, also tied to the cache).
    L1 = 5,
    /// The I/O port.
    Io = 6,
}

impl OutputPort {
    /// All output ports in Figure 5 column order.
    pub const ALL: [OutputPort; NUM_OUTPUT_PORTS] = [
        OutputPort::North,
        OutputPort::South,
        OutputPort::East,
        OutputPort::West,
        OutputPort::L0,
        OutputPort::L1,
        OutputPort::Io,
    ];

    /// Index in `0..7`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Constructs from an index in `0..7`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 7`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// Single-bit column mask for this output.
    #[inline]
    pub const fn mask(self) -> u32 {
        1 << (self as u32)
    }

    /// True for the four torus output ports.
    #[inline]
    pub const fn is_network(self) -> bool {
        (self as usize) < 4
    }

    /// True for the two local sink ports (L0/L1); at most one flit per
    /// cycle can be delivered through each, which bounds delivered
    /// throughput at 2 flits/router/cycle (§4.3).
    #[inline]
    pub const fn is_local_sink(self) -> bool {
        matches!(self, OutputPort::L0 | OutputPort::L1)
    }

    /// Mask of the four network output ports.
    pub const NETWORK_MASK: u32 = 0b0000_1111;
    /// Mask of the two local sink ports.
    pub const LOCAL_MASK: u32 = 0b0011_0000;
}

impl fmt::Display for OutputPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OutputPort::North => "G-N",
            OutputPort::South => "G-S",
            OutputPort::East => "G-E",
            OutputPort::West => "G-W",
            OutputPort::L0 => "G-L0",
            OutputPort::L1 => "G-L1",
            OutputPort::Io => "G-I/O",
        };
        f.write_str(s)
    }
}

/// One of the 16 input arbiters: an (input port, read port) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReadPort {
    /// The owning input port.
    pub port: InputPort,
    /// Which of the two buffer read ports (0 or 1).
    pub rp: u8,
}

impl ReadPort {
    /// Creates a read-port handle.
    ///
    /// # Panics
    ///
    /// Panics if `rp >= 2`.
    pub fn new(port: InputPort, rp: u8) -> Self {
        assert!(
            (rp as usize) < READ_PORTS_PER_INPUT,
            "read port {rp} out of range"
        );
        ReadPort { port, rp }
    }

    /// The Figure 5 row index of this arbiter (`0..16`).
    #[inline]
    pub const fn row(self) -> usize {
        self.port as usize * READ_PORTS_PER_INPUT + self.rp as usize
    }

    /// Inverse of [`ReadPort::row`].
    ///
    /// # Panics
    ///
    /// Panics if `row >= 16`.
    pub fn from_row(row: usize) -> Self {
        assert!(row < NUM_ARBITER_ROWS, "row {row} out of range");
        ReadPort {
            port: InputPort::from_index(row / READ_PORTS_PER_INPUT),
            rp: (row % READ_PORTS_PER_INPUT) as u8,
        }
    }

    /// True when this arbiter serves a torus input port (a "rotary
    /// priority" row for the Rotary Rule).
    #[inline]
    pub const fn is_network(self) -> bool {
        self.port.is_network()
    }
}

impl fmt::Display for ReadPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rp{}", self.port, self.rp)
    }
}

/// Mask of connection-matrix rows belonging to network (torus) input ports.
///
/// Rows 0..8 in Figure 5 order: N rp0, N rp1, S rp0, S rp1, E rp0, E rp1,
/// W rp0, W rp1.
pub const NETWORK_ROW_MASK: u32 = 0x00ff;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_round_trip() {
        for row in 0..NUM_ARBITER_ROWS {
            assert_eq!(ReadPort::from_row(row).row(), row);
        }
    }

    #[test]
    fn figure5_row_order() {
        assert_eq!(ReadPort::new(InputPort::North, 0).row(), 0);
        assert_eq!(ReadPort::new(InputPort::North, 1).row(), 1);
        assert_eq!(ReadPort::new(InputPort::West, 1).row(), 7);
        assert_eq!(ReadPort::new(InputPort::Cache, 0).row(), 8);
        assert_eq!(ReadPort::new(InputPort::Io, 1).row(), 15);
    }

    #[test]
    fn network_row_mask_matches_predicate() {
        let mut mask = 0u32;
        for row in 0..NUM_ARBITER_ROWS {
            if ReadPort::from_row(row).is_network() {
                mask |= 1 << row;
            }
        }
        assert_eq!(mask, NETWORK_ROW_MASK);
    }

    #[test]
    fn port_classification() {
        assert!(InputPort::North.is_network());
        assert!(InputPort::Cache.is_local());
        assert!(OutputPort::L0.is_local_sink());
        assert!(!OutputPort::Io.is_local_sink());
        assert!(OutputPort::East.is_network());
        assert_eq!(
            OutputPort::NETWORK_MASK | OutputPort::LOCAL_MASK | OutputPort::Io.mask(),
            0b0111_1111
        );
    }

    #[test]
    fn display_matches_figure5_names() {
        assert_eq!(InputPort::Mc0.to_string(), "L-MC0");
        assert_eq!(OutputPort::L1.to_string(), "G-L1");
        assert_eq!(ReadPort::new(InputPort::South, 1).to_string(), "L-S rp1");
    }

    #[test]
    #[should_panic(expected = "read port")]
    fn bad_read_port_rejected() {
        let _ = ReadPort::new(InputPort::North, 2);
    }

    #[test]
    fn index_round_trip() {
        for p in InputPort::ALL {
            assert_eq!(InputPort::from_index(p.index()), p);
        }
        for p in OutputPort::ALL {
            assert_eq!(OutputPort::from_index(p.index()), p);
            assert_eq!(p.mask().trailing_zeros() as usize, p.index());
        }
    }
}
