//! MCM — the Maximal Cardinality Matching upper bound (§3).
//!
//! The paper uses MCM, "basically MWM with all connections having equal
//! weights", as an exhaustive upper bound on how many input/output pairs
//! any arbitration algorithm could match; it is used only in the
//! non-timing (standalone) model because nobody knows how to implement it
//! in hardware within a few cycles.
//!
//! We compute it exactly with the Hopcroft–Karp algorithm, which finds a
//! *maximum* cardinality matching of a bipartite graph in
//! `O(E * sqrt(V))`. On the 21364's 16×7 matrix this is microseconds, but
//! the implementation is fully general so property tests can hammer it on
//! arbitrary matrices.

use crate::matching::Matching;
use crate::matrix::RequestMatrix;

const NIL: usize = usize::MAX;

/// Computes a maximum-cardinality matching of `req`.
///
/// The result is the largest possible number of simultaneous
/// (input arbiter → output port) dispatches for this request state; every
/// other algorithm in this crate produces a matching of equal or smaller
/// cardinality (asserted by property tests).
///
/// # Example
///
/// ```
/// use arbitration::matrix::RequestMatrix;
/// use arbitration::mcm::maximum_matching;
///
/// // A "collision" pattern: three inputs all want output 0 only.
/// let req = RequestMatrix::from_rows(vec![0b01, 0b01, 0b01], 2);
/// assert_eq!(maximum_matching(&req).cardinality(), 1);
/// ```
pub fn maximum_matching(req: &RequestMatrix) -> Matching {
    let rows = req.rows();
    let cols = req.cols();
    // match_row[r] = column matched to row r (or NIL); match_col[c] likewise.
    let mut match_row = vec![NIL; rows];
    let mut match_col = vec![NIL; cols];
    let mut dist = vec![u32::MAX; rows];
    let mut queue = Vec::with_capacity(rows);

    loop {
        // BFS phase: layer unmatched rows at distance 0 and expand through
        // alternating paths; records whether any augmenting path exists.
        queue.clear();
        for r in 0..rows {
            if match_row[r] == NIL {
                dist[r] = 0;
                queue.push(r);
            } else {
                dist[r] = u32::MAX;
            }
        }
        let mut found_augmenting = false;
        let mut qi = 0;
        while qi < queue.len() {
            let r = queue[qi];
            qi += 1;
            let mut mask = req.row_mask(r);
            while mask != 0 {
                let c = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                match match_col[c] {
                    NIL => found_augmenting = true,
                    r2 => {
                        if dist[r2] == u32::MAX {
                            dist[r2] = dist[r] + 1;
                            queue.push(r2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: greedily take vertex-disjoint shortest augmenting
        // paths discovered by the BFS layering.
        for r in 0..rows {
            if match_row[r] == NIL {
                let _ = try_augment(req, r, &mut match_row, &mut match_col, &mut dist);
            }
        }
    }

    let mut m = Matching::empty(rows, cols);
    for (r, &c) in match_row.iter().enumerate() {
        if c != NIL {
            m.grant(r, c);
        }
    }
    m
}

fn try_augment(
    req: &RequestMatrix,
    r: usize,
    match_row: &mut [usize],
    match_col: &mut [usize],
    dist: &mut [u32],
) -> bool {
    let mut mask = req.row_mask(r);
    while mask != 0 {
        let c = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let r2 = match_col[c];
        let extendable = r2 == NIL
            || (dist[r2] == dist[r] + 1 && try_augment(req, r2, match_row, match_col, dist));
        if extendable {
            match_row[r] = c;
            match_col[c] = r;
            return true;
        }
    }
    // Dead end: exclude this row from further DFS in this phase.
    dist[r] = u32::MAX;
    false
}

/// Brute-force maximum matching cardinality by exhaustive search.
///
/// Exponential in the number of rows; only usable on tiny matrices. It
/// exists purely as an oracle for testing [`maximum_matching`].
pub fn brute_force_max_cardinality(req: &RequestMatrix) -> usize {
    fn go(req: &RequestMatrix, row: usize, used_cols: u32) -> usize {
        if row == req.rows() {
            return 0;
        }
        // Skip this row.
        let mut best = go(req, row + 1, used_cols);
        // Or match it to any free requested column.
        let mut mask = req.row_mask(row) & !used_cols;
        while mask != 0 {
            let c = mask.trailing_zeros();
            mask &= mask - 1;
            best = best.max(1 + go(req, row + 1, used_cols | (1 << c)));
        }
        best
    }
    go(req, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    #[test]
    fn empty_request_empty_matching() {
        let req = RequestMatrix::new(4, 4);
        assert_eq!(maximum_matching(&req).cardinality(), 0);
    }

    #[test]
    fn perfect_diagonal() {
        let req = RequestMatrix::from_rows(vec![0b001, 0b010, 0b100], 3);
        let m = maximum_matching(&req);
        assert_eq!(m.cardinality(), 3);
        assert!(m.is_valid_for(&req));
        assert!(m.is_maximal_for(&req));
    }

    #[test]
    fn requires_augmenting_path() {
        // Greedy row-order matching gets stuck at 1 here; the maximum is 2:
        // row 0 -> col 1, row 1 -> col 0.
        let req = RequestMatrix::from_rows(vec![0b11, 0b01], 2);
        assert_eq!(maximum_matching(&req).cardinality(), 2);
    }

    #[test]
    fn figure2_pattern_matches_five() {
        // The Figure 2 example: 8 input ports, oldest packets all headed to
        // output 3, but a clever match can deliver 5 packets using the
        // shaded choices {3, 6, 0, 4, 5} plus conflicts elsewhere.
        // Column sets per input row (outputs requested by *any* waiting
        // packet at that input): see Figure 2 columns 2-4.
        let rows = vec![
            0b0001110, // in0: {3,2,1}
            0b0001110, // in1
            0b0001110, // in2
            0b0001110, // in3
            0b1001010, // in4: {3,6,1}
            0b0001101, // in5: {3,2,0}
            0b0011100, // in6: {3,2,4}
            0b0101100, // in7: {3,2,5}
        ];
        let req = RequestMatrix::from_rows(rows, 7);
        // Outputs {1,2,3} serve three of in0..in3; in4 takes 6, in5 takes
        // 0, in6 takes 4, in7 takes 5: total 7.
        assert_eq!(maximum_matching(&req).cardinality(), 7);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        let mut rng = SimRng::from_seed(99);
        for trial in 0..200 {
            let rows = 1 + (rng.next_u32() % 7) as usize;
            let cols = 1 + (rng.next_u32() % 7) as usize;
            let masks: Vec<u32> = (0..rows)
                .map(|_| rng.next_u32() & ((1u32 << cols) - 1))
                .collect();
            let req = RequestMatrix::from_rows(masks, cols);
            let hk = maximum_matching(&req);
            assert!(hk.is_valid_for(&req), "trial {trial}");
            assert!(hk.is_maximal_for(&req), "trial {trial}");
            assert_eq!(
                hk.cardinality(),
                brute_force_max_cardinality(&req),
                "trial {trial}: {req:?}"
            );
        }
    }

    #[test]
    fn wide_matrix() {
        // More columns than rows: bounded by rows.
        let req = RequestMatrix::from_rows(vec![u32::MAX >> 12; 3], 20);
        assert_eq!(maximum_matching(&req).cardinality(), 3);
    }

    #[test]
    fn tall_matrix() {
        // 16 rows all fighting for 7 columns: bounded by columns.
        let req = RequestMatrix::from_rows(vec![0b0111_1111; 16], 7);
        assert_eq!(maximum_matching(&req).cardinality(), 7);
    }
}
