//! WFA — the Wave-Front Arbiter (Tamir & Chi, §3.2).
//!
//! WFA evaluates the whole connection matrix as a systolic array of
//! arbitration cells. A cell grants when it holds a request and no cell
//! earlier in the wave has already claimed its row or column:
//!
//! ```text
//! Grant(i,j) = Request(i,j) AND N(i,j) AND W(i,j)
//! S(i,j) = N(i,j) AND NOT Grant(i,j)      // row token flows down the column
//! E(i,j) = W(i,j) AND NOT Grant(i,j)      // column token flows along the row
//! ```
//!
//! Because a granted cell blocks its whole row and column, and every
//! requesting cell is eventually evaluated, WFA always yields a *maximal*
//! matching — that interaction among output arbiters is "fundamental to
//! the WFA algorithm" and also why it cannot be pipelined (§3.2).
//!
//! Fairness comes from rotating where the wave starts:
//!
//! * [`WfaStart::RoundRobin`] — WFA-base: the start diagonal rotates over
//!   all rows every arbitration (Tamir & Chi's suggestion).
//! * [`WfaStart::Rotary`] — WFA-rotary (§3.4): "cells connected to the
//!   input port arbiters for the network ports get the highest priority to
//!   be the first cell from where the wavefronts start". We realize that
//!   priority exactly by running the wave over the network-input rows
//!   first (with its own rotating start) and then over the remaining rows;
//!   the concatenation is still a single maximal wave, but no local-port
//!   packet can beat a network-port packet to an output.
//!
//! The timing-model assumption in the paper is the *Wrapped* WFA, which
//! launches all diagonals in parallel and has the same matching behaviour;
//! [`WfaVariant`] selects between the wrapped and plain evaluation orders
//! (both maximal; kept for cross-validation).

use crate::matching::Matching;
use crate::matrix::RequestMatrix;

/// Which cells get top priority in an arbitration pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WfaStart {
    /// Rotate the start diagonal round-robin over all rows (WFA-base).
    RoundRobin,
    /// Evaluate rows in `network_rows` before all others, each class with
    /// its own rotating start (WFA-rotary, §3.4).
    Rotary {
        /// Mask of rows fed by torus input ports.
        network_rows: u32,
    },
}

/// Evaluation styles; both implement the same priority semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WfaVariant {
    /// Wrapped wave-front: wrapped diagonals, each holding at most one
    /// cell per row and per column, evaluated as units. This is the
    /// variant whose hardware timing the paper assumes.
    #[default]
    Wrapped,
    /// Plain wave-front from a single start cell (textbook WFA). Also
    /// maximal; kept for cross-validation.
    Plain,
}

/// A Wave-Front Arbiter instance with rotating priority state.
#[derive(Clone, Debug)]
pub struct WfaArbiter {
    rows: usize,
    cols: usize,
    variant: WfaVariant,
    start: WfaStart,
    /// Rotating start offset for the primary (or only) row class.
    ptr_primary: usize,
    /// Rotating start offset for the local row class (rotary mode only).
    ptr_secondary: usize,
}

impl WfaArbiter {
    /// Creates a WFA over a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or exceed 32, or if a rotary start is
    /// given an empty or out-of-range `network_rows` mask.
    pub fn new(rows: usize, cols: usize, variant: WfaVariant, start: WfaStart) -> Self {
        assert!(rows > 0 && rows <= 32 && cols > 0 && cols <= 32);
        if let WfaStart::Rotary { network_rows } = start {
            assert!(network_rows != 0, "rotary start needs network rows");
            assert!(
                rows == 32 || network_rows < (1u32 << rows),
                "network row mask out of range"
            );
        }
        WfaArbiter {
            rows,
            cols,
            variant,
            start,
            ptr_primary: 0,
            ptr_secondary: 0,
        }
    }

    /// WFA-base over a matrix shape.
    pub fn base(rows: usize, cols: usize) -> Self {
        WfaArbiter::new(rows, cols, WfaVariant::Wrapped, WfaStart::RoundRobin)
    }

    /// WFA-rotary over a matrix shape.
    pub fn rotary(rows: usize, cols: usize, network_rows: u32) -> Self {
        WfaArbiter::new(
            rows,
            cols,
            WfaVariant::Wrapped,
            WfaStart::Rotary { network_rows },
        )
    }

    /// The configured variant.
    pub fn variant(&self) -> WfaVariant {
        self.variant
    }

    /// Runs one arbitration pass and advances the priority pointers.
    pub fn arbitrate(&mut self, req: &RequestMatrix) -> Matching {
        assert_eq!(req.rows(), self.rows, "request rows mismatch");
        assert_eq!(req.cols(), self.cols, "request cols mismatch");
        let mut m = Matching::empty(self.rows, self.cols);
        let mut free_rows = mask_of(self.rows);
        let mut free_cols = mask_of(self.cols);
        // Row-order scratch lives on the stack: one wave per window on
        // the saturated hot path must not touch the allocator.
        let mut order = [0usize; crate::matching::MAX_MATCHING_DIM];
        match self.start {
            WfaStart::RoundRobin => {
                for (r, slot) in order.iter_mut().enumerate().take(self.rows) {
                    *slot = r;
                }
                let s = self.ptr_primary % self.rows;
                self.ptr_primary = (s + 1) % self.rows;
                self.wave(
                    req,
                    &order[..self.rows],
                    s,
                    &mut free_rows,
                    &mut free_cols,
                    &mut m,
                );
            }
            WfaStart::Rotary { network_rows } => {
                let mut n = 0;
                for r in 0..self.rows {
                    if network_rows & (1 << r) != 0 {
                        order[n] = r;
                        n += 1;
                    }
                }
                let net = n;
                for r in 0..self.rows {
                    if network_rows & (1 << r) == 0 {
                        order[n] = r;
                        n += 1;
                    }
                }
                let s1 = self.ptr_primary % net;
                self.ptr_primary = (s1 + 1) % net;
                self.wave(
                    req,
                    &order[..net],
                    s1,
                    &mut free_rows,
                    &mut free_cols,
                    &mut m,
                );
                if n > net {
                    let local = &order[net..n];
                    let s2 = self.ptr_secondary % local.len();
                    self.ptr_secondary = (s2 + 1) % local.len();
                    self.wave(req, local, s2, &mut free_rows, &mut free_cols, &mut m);
                }
            }
        }
        m
    }

    /// Runs one wave over the given row class, consuming free rows/cols.
    fn wave(
        &self,
        req: &RequestMatrix,
        order: &[usize],
        start: usize,
        free_rows: &mut u32,
        free_cols: &mut u32,
        m: &mut Matching,
    ) {
        match self.variant {
            WfaVariant::Wrapped => {
                // Wrapped diagonal d holds cells (order[(d + col) % L], col):
                // one cell per column, distinct rows whenever L >= cols.
                // Sweeping d over 0..L visits every (row, col) cell exactly
                // once per pass even when L < cols (rows then repeat within
                // a diagonal, which the free-row mask makes harmless).
                let len = order.len();
                for step in 0..len {
                    let d = (start + step) % len;
                    for col in 0..self.cols {
                        let row = order[(d + col) % len];
                        self.try_grant(req, row, col, free_rows, free_cols, m);
                    }
                }
            }
            WfaVariant::Plain => {
                // Anti-diagonal wavefronts from cell (order[start], 0).
                let len = order.len();
                for k in 0..(len + self.cols - 1) {
                    for i in 0..=k.min(len - 1) {
                        let j = k - i;
                        if j >= self.cols {
                            continue;
                        }
                        let row = order[(start + i) % len];
                        self.try_grant(req, row, j, free_rows, free_cols, m);
                    }
                }
            }
        }
    }

    #[inline]
    fn try_grant(
        &self,
        req: &RequestMatrix,
        row: usize,
        col: usize,
        free_rows: &mut u32,
        free_cols: &mut u32,
        m: &mut Matching,
    ) {
        if *free_rows & (1 << row) != 0 && *free_cols & (1 << col) != 0 && req.requested(row, col) {
            m.grant(row, col);
            *free_rows &= !(1 << row);
            *free_cols &= !(1 << col);
        }
    }
}

fn mask_of(n: usize) -> u32 {
    if n == 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcm;
    use crate::ports::NETWORK_ROW_MASK;
    use simcore::SimRng;

    fn random_req(rng: &mut SimRng, rows: usize, cols: usize) -> RequestMatrix {
        let masks: Vec<u32> = (0..rows).map(|_| rng.next_u32() & mask_of(cols)).collect();
        RequestMatrix::from_rows(masks, cols)
    }

    #[test]
    fn grants_are_valid_matchings() {
        let mut rng = SimRng::from_seed(1);
        let mut wfa = WfaArbiter::base(16, 7);
        for _ in 0..200 {
            let req = random_req(&mut rng, 16, 7);
            let m = wfa.arbitrate(&req);
            assert!(m.is_valid_for(&req));
        }
    }

    #[test]
    fn wfa_is_always_maximal() {
        // The defining property: no request between a free row and a free
        // column survives a full wave — for every variant and start mode.
        let mut rng = SimRng::from_seed(2);
        let starts = [
            WfaStart::RoundRobin,
            WfaStart::Rotary {
                network_rows: NETWORK_ROW_MASK,
            },
        ];
        for variant in [WfaVariant::Wrapped, WfaVariant::Plain] {
            for start in starts {
                let mut wfa = WfaArbiter::new(16, 7, variant, start);
                for _ in 0..200 {
                    let req = random_req(&mut rng, 16, 7);
                    let m = wfa.arbitrate(&req);
                    assert!(m.is_valid_for(&req));
                    assert!(
                        m.is_maximal_for(&req),
                        "{variant:?}/{start:?} not maximal on {req:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn never_exceeds_mcm() {
        let mut rng = SimRng::from_seed(3);
        let mut wfa = WfaArbiter::base(16, 7);
        for _ in 0..200 {
            let req = random_req(&mut rng, 16, 7);
            let upper = mcm::maximum_matching(&req).cardinality();
            assert!(wfa.arbitrate(&req).cardinality() <= upper);
        }
    }

    #[test]
    fn start_rotation_gives_long_run_fairness() {
        // Two rows forever contending for one column: round-robin start
        // must alternate grants between them.
        let req = RequestMatrix::from_rows(vec![0b1, 0b1], 1);
        let mut wfa = WfaArbiter::base(2, 1);
        let mut wins = [0usize; 2];
        for _ in 0..100 {
            let m = wfa.arbitrate(&req);
            wins[m.input_of(0).unwrap()] += 1;
        }
        assert_eq!(wins, [50, 50]);
    }

    #[test]
    fn rotary_strictly_prioritizes_network_rows() {
        // Row 8 (cache) and row 3 (torus) contend for column 0: the torus
        // row must win on every pass, whatever the rotation state.
        let mut masks = vec![0u32; 16];
        masks[8] = 1;
        masks[3] = 1;
        let req = RequestMatrix::from_rows(masks, 7);
        let mut wfa = WfaArbiter::rotary(16, 7, NETWORK_ROW_MASK);
        for _ in 0..32 {
            let m = wfa.arbitrate(&req);
            assert_eq!(m.input_of(0), Some(3), "rotary must favour cross-traffic");
        }
    }

    #[test]
    fn rotary_still_serves_local_rows_when_alone() {
        let mut masks = vec![0u32; 16];
        masks[9] = 0b0100;
        let req = RequestMatrix::from_rows(masks, 7);
        let mut wfa = WfaArbiter::rotary(16, 7, NETWORK_ROW_MASK);
        let m = wfa.arbitrate(&req);
        assert_eq!(m.output_of(9), Some(2));
    }

    #[test]
    fn rotary_is_fair_within_the_network_class() {
        // Torus rows 0 and 5 contending for column 2 share the wins.
        // WFA's rotating-start fairness is cell-based rather than
        // row-based, so the split is not exactly 50/50 (here 3:5 per
        // 8-start period); what matters is that neither row starves.
        let mut masks = vec![0u32; 16];
        masks[0] = 0b100;
        masks[5] = 0b100;
        let req = RequestMatrix::from_rows(masks, 7);
        let mut wfa = WfaArbiter::rotary(16, 7, NETWORK_ROW_MASK);
        let mut wins = [0usize; 16];
        for _ in 0..64 {
            wins[wfa.arbitrate(&req).input_of(2).unwrap()] += 1;
        }
        assert_eq!(wins[0] + wins[5], 64);
        assert!(wins[0] >= 16, "row 0 starving: {wins:?}");
        assert!(wins[5] >= 16, "row 5 starving: {wins:?}");
    }

    #[test]
    fn wrapped_and_plain_agree_on_cardinality_distribution() {
        // Both variants are maximal with rotating priority; across many
        // random matrices their average cardinality should be near-equal.
        let mut rng = SimRng::from_seed(4);
        let mut wrapped = WfaArbiter::new(16, 7, WfaVariant::Wrapped, WfaStart::RoundRobin);
        let mut plain = WfaArbiter::new(16, 7, WfaVariant::Plain, WfaStart::RoundRobin);
        let (mut sw, mut sp) = (0usize, 0usize);
        for _ in 0..300 {
            let req = random_req(&mut rng, 16, 7);
            sw += wrapped.arbitrate(&req).cardinality();
            sp += plain.arbitrate(&req).cardinality();
        }
        let diff = (sw as f64 - sp as f64).abs() / sw as f64;
        assert!(diff < 0.03, "wrapped={sw} plain={sp}");
    }

    #[test]
    fn saturated_matrix_fills_all_columns() {
        let req = RequestMatrix::from_rows(vec![0b0111_1111; 16], 7);
        let mut wfa = WfaArbiter::base(16, 7);
        assert_eq!(wfa.arbitrate(&req).cardinality(), 7);
    }

    #[test]
    fn narrow_row_class_still_covers_all_cells() {
        // Rotary with only 2 network rows and 7 columns exercises the
        // len < cols sweep in the wrapped evaluation.
        let mut masks = vec![0u32; 4];
        masks[0] = 0b010_0000;
        masks[1] = 0b100_0000;
        let req = RequestMatrix::from_rows(masks, 7);
        let mut wfa = WfaArbiter::rotary(4, 7, 0b0011);
        let m = wfa.arbitrate(&req);
        assert_eq!(m.cardinality(), 2);
        assert!(m.is_maximal_for(&req));
    }

    #[test]
    fn empty_requests_empty_grants() {
        let req = RequestMatrix::new(16, 7);
        let mut wfa = WfaArbiter::base(16, 7);
        assert_eq!(wfa.arbitrate(&req).cardinality(), 0);
    }

    #[test]
    #[should_panic(expected = "rotary start needs network rows")]
    fn rotary_without_rows_rejected() {
        let _ = WfaArbiter::rotary(16, 7, 0);
    }
}
