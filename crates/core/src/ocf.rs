//! iOCF — iterative oldest-cell-first matching.
//!
//! Identical grant/accept machinery to iLQF ([`crate::lqf`]) with a
//! different objective: the weight of a requested cell is the
//! **head-of-line age** of the packet behind it — how long the oldest
//! eligible packet for that (input, output) has been waiting — rather
//! than the queue depth. Outputs grant the input whose head packet has
//! waited longest; inputs accept the grant whose head packet has waited
//! longest. This is the classic starvation-resistant member of the
//! weighted iterative family: a cell's weight grows monotonically with
//! every cycle it loses, so persistent losers eventually outweigh any
//! queue.
//!
//! The kernel is shared with iLQF ([`crate::lqf::WeightedIterKernel`]):
//! deterministic, allocation-free, round-robin tie-breaks with the iSLIP
//! slip rule. Only the meaning the caller assigns to the
//! [`WeightMatrix`] plane differs — the router's window fill stamps ages
//! from the `EntryMeta` slab's eligibility ticks, and the standalone
//! model uses queue position (front = oldest).

use crate::lqf::WeightedIterKernel;
use crate::matching::Matching;
use crate::matrix::{RequestMatrix, WeightMatrix};

/// iOCF: the weighted iterative kernel with **head-of-line age** weights
/// — oldest cell first.
#[derive(Clone, Debug)]
pub struct OcfArbiter {
    kernel: WeightedIterKernel,
}

impl OcfArbiter {
    /// An iOCF instance over a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or exceeds 32, or `iterations == 0`.
    pub fn new(rows: usize, cols: usize, iterations: usize) -> Self {
        OcfArbiter {
            kernel: WeightedIterKernel::new(rows, cols, iterations),
        }
    }

    /// Iteration count.
    pub fn iterations(&self) -> usize {
        self.kernel.iterations()
    }

    /// Display name used in figure output.
    pub fn label(&self) -> &'static str {
        match self.kernel.iterations() {
            1 => "iOCF1",
            2 => "iOCF2",
            3 => "iOCF3",
            _ => "iOCF",
        }
    }

    /// Runs one arbitration pass (see
    /// [`WeightedIterKernel::arbitrate`](crate::lqf::WeightedIterKernel::arbitrate)).
    ///
    /// # Panics
    ///
    /// Panics if the request or weight matrix shape differs from the
    /// arbiter's.
    pub fn arbitrate(&mut self, req: &RequestMatrix, weights: &WeightMatrix) -> Matching {
        self.kernel.arbitrate(req, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_cell_wins_both_phases() {
        // Rows 0 and 1 both request column 0; row 1's head packet is
        // older. Row 1 also has a younger option at column 1: age steers
        // its accept back to column 0.
        let req = RequestMatrix::from_rows(vec![0b01, 0b11], 2);
        let mut w = WeightMatrix::new(2, 2);
        w.set(0, 0, 4);
        w.set(1, 0, 20);
        w.set(1, 1, 3);
        let mut ocf = OcfArbiter::new(2, 2, 2);
        let m = ocf.arbitrate(&req, &w);
        assert_eq!(m.output_of(1), Some(0), "oldest cell granted and accepted");
        assert_eq!(m.output_of(0), None, "younger contender loses round one");
    }

    #[test]
    fn second_iteration_recovers_the_loser() {
        // Same setup, but with 2 iterations row 0 cannot be matched at all
        // (its only column went to row 1) — whereas giving row 0 a second
        // column lets iteration 2 pick it up.
        let req = RequestMatrix::from_rows(vec![0b11, 0b01], 2);
        let mut w = WeightMatrix::new(2, 2);
        w.set(0, 0, 4);
        w.set(0, 1, 1);
        w.set(1, 0, 20);
        let mut ocf = OcfArbiter::new(2, 2, 2);
        let m = ocf.arbitrate(&req, &w);
        assert_eq!(m.output_of(1), Some(0));
        assert_eq!(m.output_of(0), Some(1), "iteration 2 matches the loser");
    }

    #[test]
    fn labels() {
        assert_eq!(OcfArbiter::new(4, 4, 1).label(), "iOCF1");
        assert_eq!(OcfArbiter::new(4, 4, 2).label(), "iOCF2");
        assert_eq!(OcfArbiter::new(4, 4, 7).label(), "iOCF");
    }
}
