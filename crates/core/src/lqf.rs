//! iLQF — iterative longest-queue-first matching (McKeown's weighted
//! sibling of iSLIP), plus the shared weighted grant/accept kernel iOCF
//! reuses.
//!
//! Where iSLIP's grant and accept steps consult only rotating pointers,
//! the weighted iterative algorithms consult a [`WeightMatrix`] carried
//! alongside the request bitmasks:
//!
//! 1. **Request.** Every unmatched input requests every unmatched output
//!    it has a packet for (the plain [`RequestMatrix`], unchanged).
//! 2. **Grant.** Each unmatched output grants the *heaviest* requesting
//!    input — under iLQF the weight is that (input, output) queue's
//!    depth, so long queues drain first.
//! 3. **Accept.** Each input that received grants accepts its heaviest
//!    grant.
//!
//! Ties — ubiquitous at low load, where most weights are 1 — fall back to
//! the same [`round_robin_first`] pointer discipline iSLIP uses, with the
//! slip rule intact: pointers advance only past a first-iteration
//! accepted grant, so equal-weight contention desynchronizes exactly like
//! iSLIP instead of re-fighting the same cell every cycle.
//!
//! The kernel is deterministic (no RNG draws) and allocation-free per
//! pass: the grant scratch lives in fixed `[_; MAX_DIM]` arrays, exactly
//! like [`crate::islip`]. [`WeightedIterKernel`] is the shared machinery;
//! [`LqfArbiter`] names the depth-weighted instance, and
//! [`crate::ocf::OcfArbiter`] wraps the same kernel with head-of-line age
//! weights.

use crate::matching::Matching;
use crate::matrix::{RequestMatrix, WeightMatrix, MAX_DIM};
use crate::policy::round_robin_first;

/// The heaviest member of `pool` by `weight_of`, ties broken round-robin
/// at or after `ptr` — the pick primitive both weighted phases share.
///
/// # Panics
///
/// Panics (in debug builds) if `pool == 0`.
#[inline]
fn heaviest(pool: u32, ptr: u32, weight_of: impl Fn(usize) -> u32) -> usize {
    debug_assert!(pool != 0, "weighted pick from an empty pool");
    let mut best = 0u32;
    let mut ties = 0u32;
    let mut m = pool;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        m &= m - 1;
        let w = weight_of(i);
        if w > best {
            best = w;
            ties = 1 << i;
        } else if w == best {
            ties |= 1 << i;
        }
    }
    round_robin_first(ties, ptr)
}

/// The weighted iterative grant/accept kernel: iSLIP's structure with
/// max-weight picks and round-robin tie-breaks. Instantiated as iLQF
/// (depth weights) and iOCF (age weights); the kernel itself is agnostic
/// to what the weights mean.
#[derive(Clone, Debug)]
pub struct WeightedIterKernel {
    rows: usize,
    cols: usize,
    iterations: usize,
    /// Per output column: the input row with current tie-break priority.
    grant_ptr: Vec<u32>,
    /// Per input row: the output column with current tie-break priority.
    accept_ptr: Vec<u32>,
}

impl WeightedIterKernel {
    /// A kernel over a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or exceeds 32, or `iterations == 0`.
    pub fn new(rows: usize, cols: usize, iterations: usize) -> Self {
        assert!(rows > 0 && rows <= MAX_DIM, "rows out of range: {rows}");
        assert!(cols > 0 && cols <= MAX_DIM, "cols out of range: {cols}");
        assert!(
            iterations > 0,
            "weighted kernel needs at least one iteration"
        );
        WeightedIterKernel {
            rows,
            cols,
            iterations,
            grant_ptr: vec![0; cols],
            accept_ptr: vec![0; rows],
        }
    }

    /// Iteration count.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Runs one arbitration pass over `req` with weights `w`, updating the
    /// tie-break pointers.
    ///
    /// Iterations after the matching stops growing are skipped (a match is
    /// never revoked, so an empty grant phase is terminal).
    ///
    /// # Panics
    ///
    /// Panics if the request or weight matrix shape differs from the
    /// kernel's.
    pub fn arbitrate(&mut self, req: &RequestMatrix, w: &WeightMatrix) -> Matching {
        assert_eq!(req.rows(), self.rows, "request rows mismatch");
        assert_eq!(req.cols(), self.cols, "request cols mismatch");
        assert_eq!(w.rows(), self.rows, "weight rows mismatch");
        assert_eq!(w.cols(), self.cols, "weight cols mismatch");
        let mut m = Matching::empty(self.rows, self.cols);
        let col_masks = req.col_masks();
        for iter in 0..self.iterations {
            let matched_rows = m.matched_rows();
            let matched_cols = m.matched_cols();

            // Grant: each unmatched output grants its heaviest requester.
            // grants[r] = mask of columns granting row r.
            let mut grants = [0u32; MAX_DIM];
            let mut any_grant = false;
            for (c, &col_mask) in col_masks.iter().enumerate().take(self.cols) {
                if matched_cols & (1 << c) != 0 {
                    continue;
                }
                let requesters = col_mask & !matched_rows;
                if requesters == 0 {
                    continue;
                }
                let r = heaviest(requesters, self.grant_ptr[c], |r| w.weight(r, c));
                grants[r] |= 1 << c;
                any_grant = true;
            }
            if !any_grant {
                break;
            }

            // Accept: each granted input accepts its heaviest grant.
            for (r, &g) in grants.iter().enumerate().take(self.rows) {
                if g == 0 {
                    continue;
                }
                let c = heaviest(g, self.accept_ptr[r], |c| w.weight(r, c));
                m.grant(r, c);
                if iter == 0 {
                    // The slip, unchanged from iSLIP: tie-break pointers
                    // advance only past a first-iteration accepted grant.
                    self.grant_ptr[c] = ((r + 1) % self.rows) as u32;
                    self.accept_ptr[r] = ((c + 1) % self.cols) as u32;
                }
            }
        }
        m
    }
}

/// iLQF: the weighted iterative kernel with **queue-depth** weights —
/// longest queue first. The weight plane is supplied by the caller (the
/// router's window fill counts waiting packets per (input, output); the
/// standalone model counts queued packets that can use the output).
#[derive(Clone, Debug)]
pub struct LqfArbiter {
    kernel: WeightedIterKernel,
}

impl LqfArbiter {
    /// An iLQF instance over a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or exceeds 32, or `iterations == 0`.
    pub fn new(rows: usize, cols: usize, iterations: usize) -> Self {
        LqfArbiter {
            kernel: WeightedIterKernel::new(rows, cols, iterations),
        }
    }

    /// Iteration count.
    pub fn iterations(&self) -> usize {
        self.kernel.iterations()
    }

    /// Display name used in figure output.
    pub fn label(&self) -> &'static str {
        match self.kernel.iterations() {
            1 => "iLQF1",
            2 => "iLQF2",
            3 => "iLQF3",
            _ => "iLQF",
        }
    }

    /// Runs one arbitration pass (see [`WeightedIterKernel::arbitrate`]).
    ///
    /// # Panics
    ///
    /// Panics if the request or weight matrix shape differs from the
    /// arbiter's.
    pub fn arbitrate(&mut self, req: &RequestMatrix, weights: &WeightMatrix) -> Matching {
        self.kernel.arbitrate(req, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcm;
    use simcore::SimRng;

    fn random_req(rng: &mut SimRng, rows: usize, cols: usize) -> RequestMatrix {
        let masks: Vec<u32> = (0..rows)
            .map(|_| rng.next_u32() & ((1u32 << cols) - 1))
            .collect();
        RequestMatrix::from_rows(masks, cols)
    }

    fn random_weights(rng: &mut SimRng, rows: usize, cols: usize) -> WeightMatrix {
        let mut w = WeightMatrix::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                w.set(r, c, 1 + rng.below(16) as u32);
            }
        }
        w
    }

    #[test]
    fn matchings_are_valid_and_bounded_by_mcm() {
        let mut rng = SimRng::from_seed(91);
        for iters in 1..=3 {
            let mut lqf = LqfArbiter::new(16, 7, iters);
            for _ in 0..200 {
                let req = random_req(&mut rng, 16, 7);
                let w = random_weights(&mut rng, 16, 7);
                let upper = mcm::maximum_matching(&req).cardinality();
                let m = lqf.arbitrate(&req, &w);
                assert!(m.is_valid_for(&req), "iLQF{iters} invalid on {req:?}");
                assert!(m.cardinality() <= upper, "iLQF{iters} beat MCM");
            }
        }
    }

    #[test]
    fn deterministic_given_same_requests_and_weights() {
        let mut gen = SimRng::from_seed(92);
        let cases: Vec<(RequestMatrix, WeightMatrix)> = (0..50)
            .map(|_| (random_req(&mut gen, 16, 7), random_weights(&mut gen, 16, 7)))
            .collect();
        let run = |mut a: LqfArbiter| -> Vec<usize> {
            cases
                .iter()
                .map(|(r, w)| a.arbitrate(r, w).cardinality())
                .collect()
        };
        assert_eq!(
            run(LqfArbiter::new(16, 7, 2)),
            run(LqfArbiter::new(16, 7, 2))
        );
    }

    #[test]
    fn heaviest_requester_wins_the_grant() {
        // Two rows request the only column; row 1 carries more weight.
        let req = RequestMatrix::from_rows(vec![0b1, 0b1], 1);
        let mut w = WeightMatrix::new(2, 1);
        w.set(0, 0, 3);
        w.set(1, 0, 9);
        let mut lqf = LqfArbiter::new(2, 1, 1);
        let m = lqf.arbitrate(&req, &w);
        assert_eq!(m.input_of(0), Some(1), "depth 9 beats depth 3");
    }

    #[test]
    fn heaviest_grant_wins_the_accept() {
        // One row granted by both columns; column 1 is heavier.
        let req = RequestMatrix::from_rows(vec![0b11], 2);
        let mut w = WeightMatrix::new(1, 2);
        w.set(0, 0, 2);
        w.set(0, 1, 8);
        let mut lqf = LqfArbiter::new(1, 2, 1);
        let m = lqf.arbitrate(&req, &w);
        assert_eq!(m.output_of(0), Some(1), "heavier column accepted");
    }

    #[test]
    fn unit_weights_degenerate_to_round_robin_tie_break() {
        // With every weight equal, the kernel desynchronizes exactly like
        // iSLIP: persistent all-ones requests reach a full matching.
        let req = RequestMatrix::from_rows(vec![0b1111; 4], 4);
        let unit = WeightMatrix::unit(4, 4);
        let mut lqf = LqfArbiter::new(4, 4, 1);
        let warmup: Vec<usize> = (0..4)
            .map(|_| lqf.arbitrate(&req, &unit).cardinality())
            .collect();
        assert_eq!(warmup, vec![1, 2, 3, 4], "one new output desyncs per slot");
        for slot in 0..16 {
            assert_eq!(
                lqf.arbitrate(&req, &unit).cardinality(),
                4,
                "slot {slot} lost the full matching"
            );
        }
    }

    #[test]
    fn more_iterations_never_hurt_on_average() {
        let mut gen = SimRng::from_seed(93);
        let mut i1 = LqfArbiter::new(16, 7, 1);
        let mut i3 = LqfArbiter::new(16, 7, 3);
        let (mut s1, mut s3) = (0usize, 0usize);
        for _ in 0..300 {
            let req = random_req(&mut gen, 16, 7);
            let w = random_weights(&mut gen, 16, 7);
            s1 += i1.arbitrate(&req, &w).cardinality();
            s3 += i3.arbitrate(&req, &w).cardinality();
        }
        assert!(s3 > s1, "iLQF3 ({s3}) should out-match iLQF1 ({s1})");
    }

    #[test]
    fn empty_requests_empty_matching() {
        let req = RequestMatrix::new(4, 4);
        let w = WeightMatrix::unit(4, 4);
        let mut lqf = LqfArbiter::new(4, 4, 2);
        assert_eq!(lqf.arbitrate(&req, &w).cardinality(), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(LqfArbiter::new(4, 4, 1).label(), "iLQF1");
        assert_eq!(LqfArbiter::new(4, 4, 2).label(), "iLQF2");
        assert_eq!(LqfArbiter::new(4, 4, 5).label(), "iLQF");
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = LqfArbiter::new(4, 4, 0);
    }

    #[test]
    #[should_panic(expected = "weight rows mismatch")]
    fn weight_shape_mismatch_rejected() {
        let req = RequestMatrix::new(4, 4);
        let w = WeightMatrix::unit(3, 4);
        let _ = LqfArbiter::new(4, 4, 1).arbitrate(&req, &w);
    }
}
