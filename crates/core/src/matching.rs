//! Matchings — the result of one arbitration pass — and their invariants.
//!
//! Whatever the algorithm, an arbitration result is a *matching* in the
//! bipartite graph of input arbiters and output ports: at most one grant
//! per row (an input arbiter dispatches one packet), at most one grant per
//! column (§1: "by definition only one packet can be delivered through an
//! output port"), and grants only where requests exist. [`Matching`]
//! enforces the row/column discipline structurally; validity against a
//! request set and *maximality* (no augmenting pair left) are checked by
//! predicates used heavily in tests.

use crate::matrix::RequestMatrix;

/// Largest supported matrix dimension. The mask helpers
/// ([`Matching::matched_rows`]/[`Matching::matched_cols`]) already encode
/// rows and columns as `u32` bit positions, so 32 was always the
/// effective bound; making it explicit lets the storage live inline
/// (arbitration kernels build one matching per window — on the saturated
/// hot path — and must not touch the allocator).
pub const MAX_MATCHING_DIM: usize = 32;

/// Sentinel for "unmatched" in the inline assignment arrays.
const UNMATCHED: u8 = u8::MAX;

/// A partial assignment of input-arbiter rows to output columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    rows: u8,
    cols: u8,
    input_to_output: [u8; MAX_MATCHING_DIM],
    output_to_input: [u8; MAX_MATCHING_DIM],
}

impl Matching {
    /// An empty matching over a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds [`MAX_MATCHING_DIM`] or is zero.
    pub fn empty(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && rows <= MAX_MATCHING_DIM && cols > 0 && cols <= MAX_MATCHING_DIM);
        Matching {
            rows: rows as u8,
            cols: cols as u8,
            input_to_output: [UNMATCHED; MAX_MATCHING_DIM],
            output_to_input: [UNMATCHED; MAX_MATCHING_DIM],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols as usize
    }

    /// Records a grant of `col` to `row`.
    ///
    /// # Panics
    ///
    /// Panics if either side is already matched (that would violate the
    /// one-packet-per-port invariant) or out of range.
    pub fn grant(&mut self, row: usize, col: usize) {
        assert!(row < self.rows(), "row {row} out of range");
        assert!(col < self.cols(), "col {col} out of range");
        assert!(
            self.input_to_output[row] == UNMATCHED,
            "row {row} already matched"
        );
        assert!(
            self.output_to_input[col] == UNMATCHED,
            "col {col} already matched"
        );
        self.input_to_output[row] = col as u8;
        self.output_to_input[col] = row as u8;
    }

    /// The output granted to `row`, if any.
    #[inline]
    pub fn output_of(&self, row: usize) -> Option<usize> {
        let c = self.input_to_output[row];
        (c != UNMATCHED).then_some(c as usize)
    }

    /// The row granted `col`, if any.
    #[inline]
    pub fn input_of(&self, col: usize) -> Option<usize> {
        let r = self.output_to_input[col];
        (r != UNMATCHED).then_some(r as usize)
    }

    /// Number of matched pairs.
    pub fn cardinality(&self) -> usize {
        self.input_to_output[..self.rows()]
            .iter()
            .filter(|&&c| c != UNMATCHED)
            .count()
    }

    /// Iterates over `(row, col)` grants in row order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.input_to_output[..self.rows()]
            .iter()
            .enumerate()
            .filter_map(|(r, &c)| (c != UNMATCHED).then_some((r, c as usize)))
    }

    /// Mask of matched rows.
    pub fn matched_rows(&self) -> u32 {
        let mut m = 0;
        for (r, c) in self.pairs() {
            debug_assert!(c < 32);
            m |= 1u32 << r;
        }
        m
    }

    /// Mask of matched columns.
    pub fn matched_cols(&self) -> u32 {
        let mut m = 0;
        for (_, c) in self.pairs() {
            m |= 1u32 << c;
        }
        m
    }

    /// True when every grant corresponds to a request in `req`.
    ///
    /// Structural row/column uniqueness is already guaranteed by
    /// construction, so this is the full matching-validity check.
    pub fn is_valid_for(&self, req: &RequestMatrix) -> bool {
        self.rows() == req.rows()
            && self.cols() == req.cols()
            && self.pairs().all(|(r, c)| req.requested(r, c))
    }

    /// True when no unmatched row still requests an unmatched column — the
    /// defining property of a *maximal* matching. MCM and WFA always
    /// produce maximal matchings; SPAA and PIM1 may not (arbitration
    /// collisions, §3.3).
    pub fn is_maximal_for(&self, req: &RequestMatrix) -> bool {
        let rows = self.matched_rows();
        let cols = self.matched_cols();
        for r in 0..req.rows() {
            if rows & (1 << r) != 0 {
                continue;
            }
            if req.row_mask(r) & !cols != 0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_3x3() -> RequestMatrix {
        // 0 -> {0,1}, 1 -> {0}, 2 -> {2}
        RequestMatrix::from_rows(vec![0b011, 0b001, 0b100], 3)
    }

    #[test]
    fn grant_bookkeeping() {
        let mut m = Matching::empty(3, 3);
        m.grant(0, 1);
        m.grant(2, 2);
        assert_eq!(m.cardinality(), 2);
        assert_eq!(m.output_of(0), Some(1));
        assert_eq!(m.output_of(1), None);
        assert_eq!(m.input_of(2), Some(2));
        assert_eq!(m.matched_rows(), 0b101);
        assert_eq!(m.matched_cols(), 0b110);
        assert_eq!(m.pairs().collect::<Vec<_>>(), vec![(0, 1), (2, 2)]);
    }

    #[test]
    #[should_panic(expected = "row 0 already matched")]
    fn double_row_grant_panics() {
        let mut m = Matching::empty(2, 2);
        m.grant(0, 0);
        m.grant(0, 1);
    }

    #[test]
    #[should_panic(expected = "col 1 already matched")]
    fn double_col_grant_panics() {
        let mut m = Matching::empty(2, 2);
        m.grant(0, 1);
        m.grant(1, 1);
    }

    #[test]
    fn validity() {
        let req = req_3x3();
        let mut m = Matching::empty(3, 3);
        m.grant(0, 1);
        m.grant(1, 0);
        assert!(m.is_valid_for(&req));
        let mut bad = Matching::empty(3, 3);
        bad.grant(1, 2); // row 1 never requested col 2
        assert!(!bad.is_valid_for(&req));
    }

    #[test]
    fn maximality() {
        let req = req_3x3();
        // {0->1, 1->0, 2->2} is maximum (3) hence maximal.
        let mut max = Matching::empty(3, 3);
        max.grant(0, 1);
        max.grant(1, 0);
        max.grant(2, 2);
        assert!(max.is_maximal_for(&req));

        // {0->0} leaves 2->2 available: not maximal.
        let mut small = Matching::empty(3, 3);
        small.grant(0, 0);
        assert!(!small.is_maximal_for(&req));

        // {0->0, 2->2} is maximal even though not maximum-cardinality in
        // some other graph; here row 1 only wants col 0 which is taken.
        let mut m = Matching::empty(3, 3);
        m.grant(0, 0);
        m.grant(2, 2);
        assert!(m.is_maximal_for(&req));
    }

    #[test]
    fn empty_matching_maximal_only_without_requests() {
        let none = RequestMatrix::new(2, 2);
        let m = Matching::empty(2, 2);
        assert!(m.is_maximal_for(&none));
        let some = RequestMatrix::from_rows(vec![0b01, 0b00], 2);
        assert!(!m.is_maximal_for(&some));
    }

    #[test]
    fn dimension_mismatch_invalidates() {
        let req = RequestMatrix::new(2, 2);
        let m = Matching::empty(3, 2);
        assert!(!m.is_valid_for(&req));
    }
}
