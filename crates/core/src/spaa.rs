//! SPAA — the Simple Pipelined Arbitration Algorithm (§3.3).
//!
//! SPAA is the paper's contribution, implemented in the Alpha 21364. It
//! deliberately minimizes interaction between input and output arbiters:
//!
//! 1. **Nominate.** Each input arbiter nominates a packet to *exactly one*
//!    output arbiter (unlike PIM/WFA's multi-nomination). The nomination
//!    stays locked until step 3.
//! 2. **Grant.** An output arbiter receiving multiple requests selects the
//!    least-recently-selected input arbiter (SPAA-base) or applies the
//!    Rotary Rule first (SPAA-rotary), then informs the input arbiters.
//! 3. **Reset.** Input arbiters unlock unselected nominations so they can
//!    be nominated again.
//!
//! Because nominations are independent, SPAA can suffer arbitration
//! collisions (several inputs nominating the same output while other
//! outputs idle) and its matching is *not* maximal — that is the price it
//! pays for being implementable in 3 cycles and pipelineable at one new
//! arbitration per cycle. This module is the combinational grant kernel;
//! the pipelined nomination/lock/reset timing lives in the `router` crate.

use crate::matching::Matching;
use crate::policy::{RotaryMode, SelectionPolicy, Selector};
use simcore::SimRng;

/// The SPAA output-arbitration stage.
///
/// Holds one [`Selector`] per output port so that least-recently-selected
/// state persists across arbitration passes, as it does in the hardware's
/// priority matrices.
#[derive(Clone, Debug)]
pub struct SpaaArbiter {
    selectors: Vec<Selector>,
    rows: usize,
}

impl SpaaArbiter {
    /// Creates a SPAA grant stage for `rows` input arbiters and `cols`
    /// output ports.
    ///
    /// `rotary` selects between SPAA-base (LRS only) and SPAA-rotary
    /// (network rows first, LRS within a class); `network_rows` is the
    /// mask of rows fed by torus input ports.
    pub fn new(rows: usize, cols: usize, rotary: RotaryMode, network_rows: u32) -> Self {
        let selectors = (0..cols)
            .map(|_| {
                Selector::new(
                    SelectionPolicy::LeastRecentlySelected,
                    rotary,
                    network_rows,
                    rows,
                )
            })
            .collect();
        SpaaArbiter { selectors, rows }
    }

    /// SPAA-base: least-recently-selected grants.
    pub fn base(rows: usize, cols: usize) -> Self {
        SpaaArbiter::new(rows, cols, RotaryMode::Off, 0)
    }

    /// SPAA-rotary: network-input nominations win before local ones.
    pub fn rotary(rows: usize, cols: usize, network_rows: u32) -> Self {
        SpaaArbiter::new(rows, cols, RotaryMode::On, network_rows)
    }

    /// Number of output ports.
    pub fn cols(&self) -> usize {
        self.selectors.len()
    }

    /// Number of input-arbiter rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grant step: resolves single-output nominations into a matching.
    ///
    /// `nominations[row]` is the single output nominated by input arbiter
    /// `row` (or `None` when it has nothing eligible) — SPAA's step 1
    /// guarantees one nomination per row, which is what makes speculative
    /// buffer read-out safe.
    ///
    /// # Panics
    ///
    /// Panics if a nomination column is out of range or the nomination
    /// slice length differs from `rows`.
    pub fn grant(&mut self, nominations: &[Option<u8>], rng: &mut SimRng) -> Matching {
        assert_eq!(nominations.len(), self.rows, "nomination width mismatch");
        let cols = self.selectors.len();
        // Collect contender masks per output.
        let mut contenders = vec![0u32; cols];
        for (row, nom) in nominations.iter().enumerate() {
            if let Some(c) = nom {
                let c = *c as usize;
                assert!(c < cols, "nominated output {c} out of range");
                contenders[c] |= 1 << row;
            }
        }
        // Each output arbiter independently picks one contender — there is
        // no cross-output interaction to dedupe multi-nominations because
        // SPAA never multi-nominates.
        let mut m = Matching::empty(self.rows, cols);
        for (c, &mask) in contenders.iter().enumerate() {
            if mask != 0 {
                let row = self.selectors[c].select(mask, rng);
                m.grant(row, c);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::RequestMatrix;
    use crate::ports::NETWORK_ROW_MASK;

    fn rng() -> SimRng {
        SimRng::from_seed(11)
    }

    fn noms(pairs: &[(usize, u8)], rows: usize) -> Vec<Option<u8>> {
        let mut v = vec![None; rows];
        for &(r, c) in pairs {
            v[r] = Some(c);
        }
        v
    }

    #[test]
    fn uncontended_nominations_all_granted() {
        let mut spaa = SpaaArbiter::base(16, 7);
        let n = noms(&[(0, 0), (3, 2), (9, 5)], 16);
        let m = spaa.grant(&n, &mut rng());
        assert_eq!(m.cardinality(), 3);
        assert_eq!(m.output_of(0), Some(0));
        assert_eq!(m.output_of(3), Some(2));
        assert_eq!(m.output_of(9), Some(5));
    }

    #[test]
    fn collision_grants_exactly_one() {
        let mut spaa = SpaaArbiter::base(16, 7);
        let n = noms(&[(0, 4), (5, 4), (12, 4)], 16);
        let m = spaa.grant(&n, &mut rng());
        assert_eq!(m.cardinality(), 1, "one winner per output port");
        assert_eq!(m.matched_cols(), 1 << 4);
    }

    #[test]
    fn collisions_lose_matches_where_wfa_would_not() {
        // The core SPAA trade-off: three inputs nominate output 0 while
        // outputs 1 and 2 idle. SPAA delivers 1; a maximal algorithm with
        // the same *request* state (each packet routable two ways) could
        // deliver more. This is the Figure 2 "arbitration collision".
        let mut spaa = SpaaArbiter::base(4, 4);
        let n = noms(&[(0, 0), (1, 0), (2, 0)], 4);
        let m = spaa.grant(&n, &mut rng());
        assert_eq!(m.cardinality(), 1);
        // With the full request sets the upper bound is 3.
        let req = RequestMatrix::from_rows(vec![0b0011, 0b0101, 0b0001, 0], 4);
        assert_eq!(crate::mcm::maximum_matching(&req).cardinality(), 3);
    }

    #[test]
    fn lrs_grant_rotates_among_persistent_contenders() {
        let mut spaa = SpaaArbiter::base(4, 2);
        let n = noms(&[(0, 1), (1, 1), (2, 1)], 4);
        let mut r = rng();
        let mut winners = Vec::new();
        for _ in 0..3 {
            winners.push(spaa.grant(&n, &mut r).input_of(1).unwrap());
        }
        winners.sort_unstable();
        assert_eq!(winners, vec![0, 1, 2], "LRS serves each before repeating");
    }

    #[test]
    fn rotary_grant_prefers_network_rows() {
        let mut spaa = SpaaArbiter::rotary(16, 7, NETWORK_ROW_MASK);
        // Row 10 (MC0) vs row 6 (torus W rp0), both nominating output 1.
        let n = noms(&[(10, 1), (6, 1)], 16);
        let mut r = rng();
        for _ in 0..8 {
            assert_eq!(spaa.grant(&n, &mut r).input_of(1), Some(6));
        }
        // Local-only contention still gets served.
        let n = noms(&[(10, 1)], 16);
        assert_eq!(spaa.grant(&n, &mut r).input_of(1), Some(10));
    }

    #[test]
    fn independent_outputs_grant_in_parallel() {
        let mut spaa = SpaaArbiter::base(16, 7);
        let n = noms(&[(0, 0), (1, 0), (2, 1), (3, 1), (4, 2)], 16);
        let m = spaa.grant(&n, &mut rng());
        assert_eq!(
            m.cardinality(),
            3,
            "one per contended output plus the free one"
        );
    }

    #[test]
    fn empty_nominations() {
        let mut spaa = SpaaArbiter::base(16, 7);
        let m = spaa.grant(&[None; 16], &mut rng());
        assert_eq!(m.cardinality(), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_rejected() {
        let mut spaa = SpaaArbiter::base(16, 7);
        let _ = spaa.grant(&[None; 4], &mut rng());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_output_rejected() {
        let mut spaa = SpaaArbiter::base(4, 2);
        let _ = spaa.grant(&noms(&[(0, 5)], 4), &mut rng());
    }
}
