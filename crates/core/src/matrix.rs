//! Connection, request, and weight matrices (§3, Figure 5).
//!
//! The paper models arbitration as operations over a two-dimensional
//! *connection matrix* whose rows are input-port arbiters and whose columns
//! are output ports. Three matrix types live here:
//!
//! * [`ConnectionMatrix`] — static legality: which (row, column) pairs are
//!   wired at all. Figure 5 shows that the 21364's individual buffer read
//!   ports are *not* connected to all output ports; only 54 of the 16×7
//!   cells exist.
//! * [`RequestMatrix`] — dynamic state for one arbitration: which outputs
//!   each input arbiter currently has an eligible packet for.
//! * [`WeightMatrix`] — optional per-(row, column) weights (queue depth or
//!   head-of-line age) carried *alongside* a [`RequestMatrix`]. The
//!   cardinality-only algorithms never look at it, so the unweighted path
//!   is untouched; the weighted kernels ([`crate::lqf`], [`crate::ocf`])
//!   and the exact MWM oracle ([`crate::mwm`]) read it for every cell the
//!   request bitmask sets.
//!
//! Connection and request columns are stored as bit masks (`u32`), which
//! keeps every algorithm in this crate branch-light; both dimensions are
//! capped at 32. Weights are a dense row-major plane over the same
//! dimensions, meaningful only where the request bitmask is set.

use crate::ports::{InputPort, OutputPort, ReadPort, NUM_ARBITER_ROWS, NUM_OUTPUT_PORTS};

/// Maximum rows/columns supported by the mask representation.
pub const MAX_DIM: usize = 32;

/// Static crossbar legality: which input arbiters reach which outputs.
///
/// # The 21364 matrix
///
/// [`ConnectionMatrix::alpha_21364`] reconstructs Figure 5. The published
/// figure's shading is not fully recoverable from the paper text, so the
/// reconstruction is built from its documented properties (see DESIGN.md
/// §3.2): exactly **54** connected cells; no network input connects back to
/// its own direction's output (minimal routing never u-turns); each network
/// input's two read ports split its six legal outputs three/three such that
/// each read port reaches exactly one local sink; the cache input reaches
/// all seven outputs from both read ports; MC inputs reach the four network
/// ports and their own local output; the I/O input reaches everything but
/// the I/O output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectionMatrix {
    rows: Vec<u32>,
    cols: usize,
}

impl ConnectionMatrix {
    /// A fully connected `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0 or exceeds [`MAX_DIM`].
    pub fn full(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && rows <= MAX_DIM, "rows out of range: {rows}");
        assert!(cols > 0 && cols <= MAX_DIM, "cols out of range: {cols}");
        let mask = if cols == 32 {
            u32::MAX
        } else {
            (1u32 << cols) - 1
        };
        ConnectionMatrix {
            rows: vec![mask; rows],
            cols,
        }
    }

    /// An empty `rows × cols` matrix (useful as a builder start).
    pub fn empty(rows: usize, cols: usize) -> Self {
        let mut m = ConnectionMatrix::full(rows, cols);
        for r in &mut m.rows {
            *r = 0;
        }
        m
    }

    /// The reconstructed Alpha 21364 connection matrix (16 × 7, 54 cells).
    pub fn alpha_21364() -> Self {
        use InputPort as I;
        use OutputPort as O;
        let mut m = ConnectionMatrix::empty(NUM_ARBITER_ROWS, NUM_OUTPUT_PORTS);
        let mut wire = |p: I, rp: u8, outs: &[O]| {
            for &o in outs {
                m.connect(ReadPort::new(p, rp).row(), o.index());
            }
        };
        // Torus inputs: six legal outputs (all but the same direction),
        // split across the two read ports so each reaches one local sink.
        wire(I::North, 0, &[O::South, O::East, O::L0]);
        wire(I::North, 1, &[O::West, O::L1, O::Io]);
        wire(I::South, 0, &[O::North, O::West, O::L1]);
        wire(I::South, 1, &[O::East, O::L0, O::Io]);
        wire(I::East, 0, &[O::North, O::West, O::L0]);
        wire(I::East, 1, &[O::South, O::L1, O::Io]);
        wire(I::West, 0, &[O::South, O::East, O::L1]);
        wire(I::West, 1, &[O::North, O::L0, O::Io]);
        // Cache: requests may target any output; both read ports fully
        // wired (the cache port carries the highest fan-out of new traffic).
        wire(I::Cache, 0, &O::ALL);
        wire(I::Cache, 1, &O::ALL);
        // Memory controllers: responses head to the network or, for local
        // misses, to their own local port (tied to the internal cache).
        wire(I::Mc0, 0, &[O::North, O::East, O::L0]);
        wire(I::Mc0, 1, &[O::South, O::West]);
        wire(I::Mc1, 0, &[O::South, O::West, O::L1]);
        wire(I::Mc1, 1, &[O::North, O::East]);
        // I/O: DMA to memory or the network; no I/O-to-I/O turnaround.
        wire(I::Io, 0, &[O::North, O::South, O::L0]);
        wire(I::Io, 1, &[O::East, O::West, O::L1]);
        debug_assert_eq!(m.connection_count(), 54);
        m
    }

    /// Number of rows (input arbiters).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (output ports).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Wires one cell.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn connect(&mut self, row: usize, col: usize) {
        assert!(col < self.cols, "col {col} out of range");
        self.rows[row] |= 1 << col;
    }

    /// True when `row` can reach `col`.
    #[inline]
    pub fn connected(&self, row: usize, col: usize) -> bool {
        self.rows[row] & (1 << col) != 0
    }

    /// Bit mask of outputs reachable from `row`.
    #[inline]
    pub fn row_mask(&self, row: usize) -> u32 {
        self.rows[row]
    }

    /// Total number of wired cells (54 for the 21364 matrix).
    pub fn connection_count(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// Mask of rows that can reach `col`.
    pub fn col_mask(&self, col: usize) -> u32 {
        let mut m = 0;
        for (i, &r) in self.rows.iter().enumerate() {
            if r & (1 << col) != 0 {
                m |= 1 << i;
            }
        }
        m
    }
}

/// Dynamic requests for one arbitration pass.
///
/// `row_mask(i)` is the set of output ports for which input arbiter `i`
/// currently has at least one eligible packet. Callers are expected to have
/// already intersected requests with the [`ConnectionMatrix`] and with the
/// set of free output ports; the algorithms treat the matrix as ground
/// truth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestMatrix {
    rows: Vec<u32>,
    cols: usize,
}

impl Default for RequestMatrix {
    /// A dimensionless placeholder (0 × 0) usable only as a scratch slot to
    /// [`RequestMatrix::copy_rows_from`] into.
    fn default() -> Self {
        RequestMatrix {
            rows: Vec::new(),
            cols: 0,
        }
    }
}

impl RequestMatrix {
    /// An empty request matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0 or exceeds [`MAX_DIM`].
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && rows <= MAX_DIM, "rows out of range: {rows}");
        assert!(cols > 0 && cols <= MAX_DIM, "cols out of range: {cols}");
        RequestMatrix {
            rows: vec![0; rows],
            cols,
        }
    }

    /// Builds a request matrix directly from row masks.
    ///
    /// # Panics
    ///
    /// Panics if any mask uses bits at or above `cols`, or dimensions are
    /// out of range.
    pub fn from_rows(masks: Vec<u32>, cols: usize) -> Self {
        let mut m = RequestMatrix::new(masks.len(), cols);
        for (i, mask) in masks.into_iter().enumerate() {
            assert!(
                cols == 32 || mask < (1u32 << cols),
                "row {i} mask {mask:#x} exceeds {cols} columns"
            );
            m.rows[i] = mask;
        }
        m
    }

    /// Rebuilds this matrix in place from row masks, reusing its row
    /// allocation — the zero-allocation path for per-window rebuilds.
    ///
    /// # Panics
    ///
    /// Panics if any mask uses bits at or above `cols`, or dimensions are
    /// out of range.
    pub fn copy_rows_from(&mut self, masks: &[u32], cols: usize) {
        assert!(
            !masks.is_empty() && masks.len() <= MAX_DIM,
            "rows out of range: {}",
            masks.len()
        );
        assert!(cols > 0 && cols <= MAX_DIM, "cols out of range: {cols}");
        for (i, &mask) in masks.iter().enumerate() {
            assert!(
                cols == 32 || mask < (1u32 << cols),
                "row {i} mask {mask:#x} exceeds {cols} columns"
            );
        }
        self.rows.clear();
        self.rows.extend_from_slice(masks);
        self.cols = cols;
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Adds a request.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(col < self.cols, "col {col} out of range");
        self.rows[row] |= 1 << col;
    }

    /// Removes a request (no-op when absent).
    pub fn clear(&mut self, row: usize, col: usize) {
        assert!(col < self.cols, "col {col} out of range");
        self.rows[row] &= !(1 << col);
    }

    /// True when `row` requests `col`.
    #[inline]
    pub fn requested(&self, row: usize, col: usize) -> bool {
        self.rows[row] & (1 << col) != 0
    }

    /// The request mask of a row.
    #[inline]
    pub fn row_mask(&self, row: usize) -> u32 {
        self.rows[row]
    }

    /// Overwrites a whole row.
    pub fn set_row_mask(&mut self, row: usize, mask: u32) {
        debug_assert!(self.cols == 32 || mask < (1u32 << self.cols));
        self.rows[row] = mask;
    }

    /// Mask of rows requesting `col`.
    pub fn col_mask(&self, col: usize) -> u32 {
        let mut m = 0;
        for (i, &r) in self.rows.iter().enumerate() {
            if r & (1 << col) != 0 {
                m |= 1 << i;
            }
        }
        m
    }

    /// Materializes every column's requester mask in one pass over the
    /// rows (the transpose the iterative matching kernels consult once
    /// per grant phase; cost proportional to the number of requests, not
    /// `rows × cols`).
    pub fn col_masks(&self) -> [u32; 32] {
        let mut cols = [0u32; 32];
        for (r, &row) in self.rows.iter().enumerate() {
            let mut mask = row;
            while mask != 0 {
                let c = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                cols[c] |= 1 << r;
            }
        }
        cols
    }

    /// Total number of set cells.
    pub fn request_count(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// True when no row requests anything.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|&r| r == 0)
    }

    /// Returns a copy with every row intersected with `mask` (e.g. the set
    /// of currently free outputs).
    pub fn masked_cols(&self, mask: u32) -> RequestMatrix {
        RequestMatrix {
            rows: self.rows.iter().map(|r| r & mask).collect(),
            cols: self.cols,
        }
    }
}

/// Per-(row, column) weights carried alongside a [`RequestMatrix`].
///
/// The weight of a cell is only meaningful where the companion request
/// bitmask is set; the plane is *not* cleared between arbitrations — the
/// zero-allocation rebuild contract is that callers rewrite the weight of
/// every cell they request (exactly how [`RequestMatrix::copy_rows_from`]
/// rewrites every row). Two weight sources are in use:
///
/// * **queue depth** — waiting packets behind the head-of-line packet for
///   that (input, output); the iLQF objective (longest queue first);
/// * **head-of-line age** — how long the head-of-line packet has been
///   eligible; the iOCF objective (oldest cell first).
///
/// Both are encoded as plain `u32` magnitudes with "bigger wins"; a
/// requested cell should carry weight ≥ 1 so the weighted kernels never
/// confuse "requested but freshly arrived" with "not requested".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightMatrix {
    weights: Vec<u32>,
    rows: usize,
    cols: usize,
}

impl Default for WeightMatrix {
    /// A dimensionless placeholder (0 × 0) usable only as a scratch slot to
    /// [`WeightMatrix::reset`] into shape.
    fn default() -> Self {
        WeightMatrix {
            weights: Vec::new(),
            rows: 0,
            cols: 0,
        }
    }
}

impl WeightMatrix {
    /// An all-zero weight plane.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0 or exceeds [`MAX_DIM`].
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && rows <= MAX_DIM, "rows out of range: {rows}");
        assert!(cols > 0 && cols <= MAX_DIM, "cols out of range: {cols}");
        WeightMatrix {
            weights: vec![0; rows * cols],
            rows,
            cols,
        }
    }

    /// An all-one weight plane: every requested cell ties, so a weighted
    /// kernel running on it degenerates to its round-robin tie-break.
    pub fn unit(rows: usize, cols: usize) -> Self {
        let mut w = WeightMatrix::new(rows, cols);
        w.weights.iter_mut().for_each(|x| *x = 1);
        w
    }

    /// Reshapes in place to `rows × cols` and zeroes every cell, reusing
    /// the allocation — the per-window rebuild path.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0 or exceeds [`MAX_DIM`].
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && rows <= MAX_DIM, "rows out of range: {rows}");
        assert!(cols > 0 && cols <= MAX_DIM, "cols out of range: {cols}");
        self.weights.clear();
        self.weights.resize(rows * cols, 0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets one cell's weight.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `row` or `col` is out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, weight: u32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.weights[row * self.cols + col] = weight;
    }

    /// One cell's weight.
    #[inline]
    pub fn weight(&self, row: usize, col: usize) -> u32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.weights[row * self.cols + col]
    }

    /// Total weight of a matching under this plane.
    ///
    /// # Panics
    ///
    /// Panics if the matching's dimensions exceed this plane's.
    pub fn matching_weight(&self, m: &crate::matching::Matching) -> u64 {
        assert!(m.rows() <= self.rows && m.cols() <= self.cols);
        m.pairs().map(|(r, c)| self.weight(r, c) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::NETWORK_ROW_MASK;

    #[test]
    fn alpha_matrix_has_54_connections() {
        // "the total nominations for the matrix could be up to 54
        //  (unshaded boxes in Figure 5)" — §3.1.
        let m = ConnectionMatrix::alpha_21364();
        assert_eq!(m.rows(), 16);
        assert_eq!(m.cols(), 7);
        assert_eq!(m.connection_count(), 54);
    }

    #[test]
    fn no_network_u_turns() {
        let m = ConnectionMatrix::alpha_21364();
        for dir in 0..4 {
            // Input port `dir` occupies rows 2*dir and 2*dir+1; output bit
            // `dir` must be absent from both.
            assert!(!m.connected(2 * dir, dir), "u-turn at dir {dir} rp0");
            assert!(!m.connected(2 * dir + 1, dir), "u-turn at dir {dir} rp1");
        }
    }

    #[test]
    fn every_network_input_reaches_both_local_sinks() {
        let m = ConnectionMatrix::alpha_21364();
        for port in 0..4 {
            let combined = m.row_mask(2 * port) | m.row_mask(2 * port + 1);
            assert_eq!(
                combined & OutputPort::LOCAL_MASK,
                OutputPort::LOCAL_MASK,
                "network input {port} cannot reach both local sinks"
            );
        }
    }

    #[test]
    fn network_inputs_cover_all_legal_outputs() {
        let m = ConnectionMatrix::alpha_21364();
        for dir in 0..4 {
            let combined = m.row_mask(2 * dir) | m.row_mask(2 * dir + 1);
            let legal = 0b0111_1111 & !(1 << dir);
            assert_eq!(combined, legal, "direction {dir}");
        }
    }

    #[test]
    fn cache_rows_fully_wired() {
        let m = ConnectionMatrix::alpha_21364();
        assert_eq!(m.row_mask(8), 0b0111_1111);
        assert_eq!(m.row_mask(9), 0b0111_1111);
    }

    #[test]
    fn every_output_reachable_from_network_and_local_rows() {
        // Sanity: no output column is orphaned.
        let m = ConnectionMatrix::alpha_21364();
        for col in 0..7 {
            assert!(m.col_mask(col) != 0, "output {col} unreachable");
            // Every torus output must be reachable from some network row,
            // otherwise cross-traffic could not continue in that direction.
            if col < 4 {
                assert!(
                    m.col_mask(col) & NETWORK_ROW_MASK != 0,
                    "torus output {col} unreachable from network rows"
                );
            }
        }
    }

    #[test]
    fn read_ports_of_a_pair_are_disjoint_except_cache() {
        let m = ConnectionMatrix::alpha_21364();
        for port in 0..8 {
            let a = m.row_mask(2 * port);
            let b = m.row_mask(2 * port + 1);
            if port == 4 {
                assert_eq!(a, b, "cache read ports are both fully wired");
            } else {
                assert_eq!(a & b, 0, "read ports of input {port} overlap");
            }
        }
    }

    #[test]
    fn request_matrix_basics() {
        let mut r = RequestMatrix::new(4, 7);
        assert!(r.is_empty());
        r.set(1, 3);
        r.set(1, 5);
        r.set(2, 3);
        assert!(r.requested(1, 3));
        assert_eq!(r.row_mask(1), 0b10_1000);
        assert_eq!(r.col_mask(3), 0b0110);
        assert_eq!(r.request_count(), 3);
        r.clear(1, 3);
        assert!(!r.requested(1, 3));
        assert_eq!(r.request_count(), 2);
    }

    #[test]
    fn masked_cols_filters_busy_outputs() {
        let mut r = RequestMatrix::new(2, 4);
        r.set(0, 0);
        r.set(0, 3);
        r.set(1, 1);
        let f = r.masked_cols(0b0001); // only output 0 free
        assert_eq!(f.row_mask(0), 0b0001);
        assert_eq!(f.row_mask(1), 0);
    }

    #[test]
    fn from_rows_round_trip() {
        let r = RequestMatrix::from_rows(vec![0b101, 0b010], 3);
        assert!(r.requested(0, 0) && r.requested(0, 2) && r.requested(1, 1));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn from_rows_validates_width() {
        let _ = RequestMatrix::from_rows(vec![0b1000], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_dims_rejected() {
        let _ = RequestMatrix::new(33, 7);
    }

    #[test]
    fn full_and_empty_matrices() {
        let f = ConnectionMatrix::full(3, 5);
        assert_eq!(f.connection_count(), 15);
        let e = ConnectionMatrix::empty(3, 5);
        assert_eq!(e.connection_count(), 0);
    }
}
