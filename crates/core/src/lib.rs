//! Crossbar arbitration algorithms from the Alpha 21364 router study.
//!
//! This crate implements the paper's contribution and all of its baselines
//! as pure, reusable matching algorithms over a *connection matrix* — the
//! representation the paper itself uses (§3, Figure 5): rows are input-port
//! arbiters (the 21364 has 16: eight input ports × two buffer read ports)
//! and columns are output-port arbiters (seven).
//!
//! | Algorithm | Module | Paper section |
//! |-----------|--------|---------------|
//! | SPAA (Simple Pipelined Arbitration Algorithm), base & rotary | [`spaa`] | §3.3 |
//! | PIM (Parallel Iterative Matching), any iteration count; PIM1 | [`pim`] | §3.1 |
//! | WFA (Wave-Front Arbiter), wrapped & plain, base & rotary | [`wfa`] | §3.2 |
//! | MCM (Maximal Cardinality Matching upper bound) | [`mcm`] | §3 |
//! | OPF (naïve oldest-packet-first strawman) | [`opf`] | Figure 2 |
//! | iSLIP (iterative round-robin with slip, 1..n iterations) & plain round-robin matcher | [`islip`] | extension |
//! | iLQF (iterative longest-queue-first, weighted) | [`lqf`] | extension |
//! | iOCF (iterative oldest-cell-first, weighted) | [`ocf`] | extension |
//! | MWM (exact maximum-weight matching oracle, Hungarian) | [`mwm`] | extension |
//!
//! Output-port selection policies (random, round-robin, least-recently
//! selected, and the Rotary Rule of §3.4) live in [`policy`]. Requests are
//! boolean bitmasks ([`matrix::RequestMatrix`]); the weighted algorithms
//! additionally read a [`matrix::WeightMatrix`] plane (queue depth or
//! head-of-line age) carried alongside the bitmasks, which leaves every
//! unweighted algorithm's path untouched.
//!
//! The crate knows nothing about time: the timing behaviour of each
//! algorithm (SPAA's 3-cycle pipelined arbitration vs PIM1/WFA's 4-cycle,
//! once-every-3-cycles arbitration) is modelled by the `router` crate on
//! top of these kernels.
//!
//! # Example
//!
//! ```
//! use arbitration::prelude::*;
//!
//! // Three input arbiters all want output 0; one also wants output 1.
//! let mut req = RequestMatrix::new(3, 2);
//! req.set(0, 0);
//! req.set(1, 0);
//! req.set(2, 0);
//! req.set(2, 1);
//!
//! let matching = mcm::maximum_matching(&req);
//! assert_eq!(matching.cardinality(), 2); // e.g. 0->0 and 2->1
//! assert!(matching.is_valid_for(&req));
//! ```

pub mod arbiter;
pub mod islip;
pub mod lqf;
pub mod matching;
pub mod matrix;
pub mod mcm;
pub mod mwm;
pub mod ocf;
pub mod opf;
pub mod pim;
pub mod policy;
pub mod ports;
pub mod spaa;
pub mod wfa;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::arbiter::{Arbiter, ArbitrationInput};
    pub use crate::islip::{IslipArbiter, PointerUpdate};
    pub use crate::lqf::{LqfArbiter, WeightedIterKernel};
    pub use crate::matching::Matching;
    pub use crate::matrix::{ConnectionMatrix, RequestMatrix, WeightMatrix};
    pub use crate::mcm;
    pub use crate::mwm::{self, MwmArbiter};
    pub use crate::ocf::OcfArbiter;
    pub use crate::opf::OpfArbiter;
    pub use crate::pim::PimArbiter;
    pub use crate::policy::{RotaryMode, SelectionPolicy, Selector};
    pub use crate::ports::{
        InputPort, OutputPort, ReadPort, NUM_ARBITER_ROWS, NUM_INPUT_PORTS, NUM_OUTPUT_PORTS,
    };
    pub use crate::spaa::SpaaArbiter;
    pub use crate::wfa::{WfaArbiter, WfaStart, WfaVariant};
}
