//! The unified one-shot arbitration interface used by the standalone model.
//!
//! The §5.1 standalone experiments compare MCM, PIM, PIM1, WFA and SPAA
//! under identical conditions ("all arbitration algorithms take one cycle
//! to execute"). The algorithms consume different *views* of a router's
//! arbitration state:
//!
//! * multi-nomination algorithms (MCM, PIM, WFA) see the full request
//!   matrix — per input arbiter, every output it could serve;
//! * single-nomination algorithms (SPAA, OPF) see one chosen nomination
//!   per input arbiter, because their input stage commits to one packet
//!   and one direction before the output stage runs.
//!
//! [`ArbitrationInput`] carries both views so one driver loop can evaluate
//! every algorithm on identical router states, which is exactly how
//! Figures 8 and 9 are produced.

use crate::islip::IslipArbiter;
use crate::lqf::LqfArbiter;
use crate::matching::Matching;
use crate::matrix::{RequestMatrix, WeightMatrix};
use crate::mcm;
use crate::ocf::OcfArbiter;
use crate::opf::OpfArbiter;
use crate::pim::PimArbiter;
use crate::spaa::SpaaArbiter;
use crate::wfa::WfaArbiter;
use simcore::SimRng;

/// Both views of one arbitration cycle's eligible traffic, optionally
/// annotated with per-cell weights.
///
/// Invariant (checked by [`ArbitrationInput::validate`]): every single
/// nomination is also present in the request matrix — the nomination is a
/// *choice among* the requests, never something new.
#[derive(Clone, Debug)]
pub struct ArbitrationInput {
    /// Full request sets, already filtered to free outputs and legal
    /// connections.
    pub requests: RequestMatrix,
    /// One committed nomination per input arbiter (SPAA/OPF view).
    pub nominations: Vec<Option<u8>>,
    /// Optional per-(row, column) weights for the weighted algorithms
    /// (iLQF, iOCF, the MWM oracle). `None` — the default every existing
    /// call site produces — means "unweighted": the cardinality
    /// algorithms never look here, and a weighted arbiter handed `None`
    /// degenerates to unit weights (pure round-robin tie-breaks).
    pub weights: Option<WeightMatrix>,
}

impl ArbitrationInput {
    /// Bundles the two views.
    ///
    /// # Panics
    ///
    /// Panics if the nomination vector width differs from the request
    /// matrix's row count.
    pub fn new(requests: RequestMatrix, nominations: Vec<Option<u8>>) -> Self {
        assert_eq!(
            nominations.len(),
            requests.rows(),
            "nomination width must match request rows"
        );
        ArbitrationInput {
            requests,
            nominations,
            weights: None,
        }
    }

    /// The same input annotated with a weight plane.
    ///
    /// # Panics
    ///
    /// Panics if the weight plane's shape differs from the request
    /// matrix's.
    pub fn with_weights(mut self, weights: WeightMatrix) -> Self {
        assert_eq!(weights.rows(), self.requests.rows(), "weight rows mismatch");
        assert_eq!(weights.cols(), self.requests.cols(), "weight cols mismatch");
        self.weights = Some(weights);
        self
    }

    /// Checks the nomination-subset-of-requests invariant.
    pub fn validate(&self) -> bool {
        self.nominations
            .iter()
            .enumerate()
            .all(|(r, nom)| match nom {
                Some(c) => self.requests.requested(r, *c as usize),
                None => true,
            })
    }
}

/// A one-shot arbitration algorithm, as modelled by the standalone
/// experiments.
pub trait Arbiter {
    /// Short display name used in figure output (e.g. `"SPAA"`).
    fn name(&self) -> &str;

    /// Produces a matching for one arbitration cycle.
    fn arbitrate(&mut self, input: &ArbitrationInput, rng: &mut SimRng) -> Matching;
}

/// MCM as an [`Arbiter`] (the exhaustive upper bound).
///
/// The matching it returns is always maximum-cardinality; by default the
/// *choice among equal-cardinality matchings* is randomized by permuting
/// rows and columns before running Hopcroft–Karp. Without that, the
/// deterministic tie-breaking systematically favours low-index ports and
/// starves the rest — and in a closed-loop queue model sustained
/// starvation translates into drops and a throughput *below* algorithms
/// with rotating priorities, which would misrepresent MCM's role as the
/// §5.1 upper bound.
#[derive(Clone, Debug)]
pub struct McmArbiter {
    randomize: bool,
}

impl Default for McmArbiter {
    fn default() -> Self {
        McmArbiter { randomize: true }
    }
}

impl McmArbiter {
    /// MCM with randomized tie-breaking (the standalone-model default).
    pub fn new() -> Self {
        Self::default()
    }

    /// MCM with deterministic (low-index-first) tie-breaking.
    pub fn deterministic() -> Self {
        McmArbiter { randomize: false }
    }
}

impl Arbiter for McmArbiter {
    fn name(&self) -> &str {
        "MCM"
    }

    fn arbitrate(&mut self, input: &ArbitrationInput, rng: &mut SimRng) -> Matching {
        let req = &input.requests;
        if !self.randomize {
            return mcm::maximum_matching(req);
        }
        let rows = req.rows();
        let cols = req.cols();
        // Random row/column relabelling: cardinality is invariant, the
        // tie-breaking becomes fair.
        let row_perm = permutation(rows, rng);
        let col_perm = permutation(cols, rng);
        let mut shuffled = RequestMatrix::new(rows, cols);
        for (r, &pr) in row_perm.iter().enumerate() {
            let mut mask = 0u32;
            let orig = req.row_mask(pr);
            for (c, &pc) in col_perm.iter().enumerate() {
                if orig & (1 << pc) != 0 {
                    mask |= 1 << c;
                }
            }
            shuffled.set_row_mask(r, mask);
        }
        let m = mcm::maximum_matching(&shuffled);
        let mut out = Matching::empty(rows, cols);
        for (r, c) in m.pairs() {
            out.grant(row_perm[r], col_perm[c]);
        }
        out
    }
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
fn permutation(n: usize, rng: &mut SimRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        p.swap(i, j);
    }
    p
}

impl Arbiter for PimArbiter {
    fn name(&self) -> &str {
        if self.iterations() == 1 {
            "PIM1"
        } else {
            "PIM"
        }
    }

    fn arbitrate(&mut self, input: &ArbitrationInput, rng: &mut SimRng) -> Matching {
        PimArbiter::arbitrate(self, &input.requests, rng)
    }
}

impl Arbiter for WfaArbiter {
    fn name(&self) -> &str {
        "WFA"
    }

    fn arbitrate(&mut self, input: &ArbitrationInput, _rng: &mut SimRng) -> Matching {
        WfaArbiter::arbitrate(self, &input.requests)
    }
}

impl Arbiter for SpaaArbiter {
    fn name(&self) -> &str {
        "SPAA"
    }

    fn arbitrate(&mut self, input: &ArbitrationInput, rng: &mut SimRng) -> Matching {
        self.grant(&input.nominations, rng)
    }
}

impl Arbiter for OpfArbiter {
    fn name(&self) -> &str {
        "OPF"
    }

    fn arbitrate(&mut self, input: &ArbitrationInput, rng: &mut SimRng) -> Matching {
        OpfArbiter::arbitrate(self, &input.nominations, rng)
    }
}

impl Arbiter for IslipArbiter {
    fn name(&self) -> &str {
        self.label()
    }

    fn arbitrate(&mut self, input: &ArbitrationInput, _rng: &mut SimRng) -> Matching {
        IslipArbiter::arbitrate(self, &input.requests)
    }
}

impl Arbiter for LqfArbiter {
    fn name(&self) -> &str {
        self.label()
    }

    fn arbitrate(&mut self, input: &ArbitrationInput, _rng: &mut SimRng) -> Matching {
        match &input.weights {
            Some(w) => LqfArbiter::arbitrate(self, &input.requests, w),
            // Unweighted input: every cell ties, so the kernel reduces to
            // its round-robin tie-break (an iSLIP-like matcher). This path
            // only runs in generic test drivers, so the allocation is fine.
            None => {
                let unit = WeightMatrix::unit(input.requests.rows(), input.requests.cols());
                LqfArbiter::arbitrate(self, &input.requests, &unit)
            }
        }
    }
}

impl Arbiter for OcfArbiter {
    fn name(&self) -> &str {
        self.label()
    }

    fn arbitrate(&mut self, input: &ArbitrationInput, _rng: &mut SimRng) -> Matching {
        match &input.weights {
            Some(w) => OcfArbiter::arbitrate(self, &input.requests, w),
            None => {
                let unit = WeightMatrix::unit(input.requests.rows(), input.requests.cols());
                OcfArbiter::arbitrate(self, &input.requests, &unit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a consistent input: random requests, nominations chosen as
    /// the lowest requested output per row.
    fn random_input(rng: &mut SimRng, rows: usize, cols: usize) -> ArbitrationInput {
        let masks: Vec<u32> = (0..rows)
            .map(|_| rng.next_u32() & ((1u32 << cols) - 1))
            .collect();
        let noms = masks
            .iter()
            .map(|&m| (m != 0).then(|| m.trailing_zeros() as u8))
            .collect();
        ArbitrationInput::new(RequestMatrix::from_rows(masks, cols), noms)
    }

    fn all_arbiters(rows: usize, cols: usize) -> Vec<Box<dyn Arbiter>> {
        vec![
            Box::new(McmArbiter::new()),
            Box::new(PimArbiter::pim1()),
            Box::new(PimArbiter::converged(rows)),
            Box::new(WfaArbiter::base(rows, cols)),
            Box::new(SpaaArbiter::base(rows, cols)),
            Box::new(OpfArbiter::new(rows, cols)),
            Box::new(IslipArbiter::islip(rows, cols, 1)),
            Box::new(IslipArbiter::islip(rows, cols, 3)),
            Box::new(IslipArbiter::round_robin_matcher(rows, cols)),
        ]
    }

    #[test]
    fn every_algorithm_yields_valid_matchings_bounded_by_mcm() {
        let mut gen = SimRng::from_seed(50);
        let mut rng = SimRng::from_seed(51);
        let mut arbiters = all_arbiters(16, 7);
        for _ in 0..100 {
            let input = random_input(&mut gen, 16, 7);
            assert!(input.validate());
            let upper = mcm::maximum_matching(&input.requests).cardinality();
            for arb in arbiters.iter_mut() {
                let m = arb.arbitrate(&input, &mut rng);
                assert!(
                    m.is_valid_for(&input.requests),
                    "{} produced an invalid matching",
                    arb.name()
                );
                assert!(
                    m.cardinality() <= upper,
                    "{} beat MCM: {} > {upper}",
                    arb.name(),
                    m.cardinality()
                );
            }
        }
    }

    #[test]
    fn matching_quality_ordering_holds_in_aggregate() {
        // Reproduces the §5.1 qualitative ordering on random states:
        // MCM >= WFA ~ PIM >= PIM1 >= SPAA.
        let mut gen = SimRng::from_seed(60);
        let mut rng = SimRng::from_seed(61);
        let mut arbiters = all_arbiters(16, 7);
        let mut totals = vec![0usize; arbiters.len()];
        for _ in 0..400 {
            let input = random_input(&mut gen, 16, 7);
            for (i, arb) in arbiters.iter_mut().enumerate() {
                totals[i] += arb.arbitrate(&input, &mut rng).cardinality();
            }
        }
        let (mcm_t, pim1_t, pim_t, wfa_t, spaa_t) =
            (totals[0], totals[1], totals[2], totals[3], totals[4]);
        assert!(mcm_t >= wfa_t, "MCM {mcm_t} < WFA {wfa_t}");
        assert!(mcm_t >= pim_t, "MCM {mcm_t} < PIM {pim_t}");
        assert!(pim_t >= pim1_t, "PIM {pim_t} < PIM1 {pim1_t}");
        assert!(pim1_t >= spaa_t, "PIM1 {pim1_t} < SPAA {spaa_t}");
        assert!(wfa_t >= pim1_t, "WFA {wfa_t} < PIM1 {pim1_t}");
    }

    #[test]
    fn names() {
        assert_eq!(McmArbiter::new().name(), "MCM");
        assert_eq!(PimArbiter::pim1().name(), "PIM1");
        assert_eq!(PimArbiter::new(4).name(), "PIM");
        assert_eq!(WfaArbiter::base(16, 7).name(), "WFA");
        assert_eq!(SpaaArbiter::base(16, 7).name(), "SPAA");
        assert_eq!(OpfArbiter::new(16, 7).name(), "OPF");
        assert_eq!(IslipArbiter::islip(16, 7, 2).name(), "iSLIP2");
        assert_eq!(IslipArbiter::round_robin_matcher(16, 7).name(), "RR");
    }

    #[test]
    fn validate_catches_rogue_nomination() {
        let req = RequestMatrix::from_rows(vec![0b01, 0b00], 2);
        let bad = ArbitrationInput::new(req, vec![Some(1), None]);
        assert!(!bad.validate());
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn width_mismatch_rejected() {
        let req = RequestMatrix::new(4, 4);
        let _ = ArbitrationInput::new(req, vec![None; 2]);
    }
}
