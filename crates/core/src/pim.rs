//! PIM — Parallel Iterative Matching (Anderson et al., §3.1).
//!
//! PIM finds a conflict-free packet set through randomized rounds of
//! three steps:
//!
//! 1. **Nominate.** Every unmatched input arbiter nominates a packet to
//!    every output arbiter for which it has one (the same packet may be
//!    nominated to multiple outputs).
//! 2. **Grant.** Every unmatched output arbiter that received requests
//!    accepts one *at random* and tells that input arbiter.
//! 3. **Accept.** An input arbiter that received multiple grants accepts
//!    one *at random*.
//!
//! PIM converges in about `log2 N` iterations (4 for the 21364's 16 input
//! arbiters). The paper's timing model can only afford a single iteration
//! — **PIM1** — whose matching quality is notably worse (McKeown);
//! [`PimArbiter::pim1`] constructs it.

use crate::matching::Matching;
use crate::matrix::RequestMatrix;
use simcore::SimRng;

/// The PIM algorithm with a configurable iteration count.
#[derive(Clone, Debug)]
pub struct PimArbiter {
    iterations: usize,
}

impl PimArbiter {
    /// PIM with `iterations` nominate/grant/accept rounds.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn new(iterations: usize) -> Self {
        assert!(iterations > 0, "PIM needs at least one iteration");
        PimArbiter { iterations }
    }

    /// The single-iteration variant evaluated in the paper's timing model.
    pub fn pim1() -> Self {
        PimArbiter::new(1)
    }

    /// The "converged" variant: `ceil(log2(rows))` iterations, the count
    /// the paper quotes for full PIM on 16 input arbiters.
    pub fn converged(rows: usize) -> Self {
        let iters = usize::BITS - rows.next_power_of_two().leading_zeros() - 1;
        PimArbiter::new((iters as usize).max(1))
    }

    /// Iteration count.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Runs PIM on a request matrix.
    ///
    /// Rounds after the matching stops growing are skipped (they cannot
    /// make progress: PIM never revokes a match). The pass is
    /// allocation-free: the grant table lives on the stack and the column
    /// masks are materialized once per call instead of once per
    /// column-visit.
    pub fn arbitrate(&mut self, req: &RequestMatrix, rng: &mut SimRng) -> Matching {
        let rows = req.rows();
        let cols = req.cols();
        let mut m = Matching::empty(rows, cols);
        // The transpose is invariant across iterations; only the matched
        // sets change.
        let col_masks = req.col_masks();

        for _ in 0..self.iterations {
            let matched_rows = m.matched_rows();
            let matched_cols = m.matched_cols();

            // Grant: each unmatched output randomly picks among the
            // requests from unmatched inputs.
            // grants[r] = mask of columns that granted row r.
            let mut grants = [0u32; crate::matching::MAX_MATCHING_DIM];
            let mut any_grant = false;
            for (c, &col_mask) in col_masks.iter().enumerate().take(cols) {
                if matched_cols & (1 << c) != 0 {
                    continue;
                }
                let requesters = col_mask & !matched_rows;
                if requesters != 0 {
                    let r = rng.pick_bit(requesters) as usize;
                    grants[r] |= 1 << c;
                    any_grant = true;
                }
            }
            if !any_grant {
                break;
            }

            // Accept: each input with grants randomly accepts one.
            for (r, &g) in grants.iter().enumerate().take(rows) {
                if g != 0 {
                    let c = rng.pick_bit(g) as usize;
                    m.grant(r, c);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcm;

    fn rng() -> SimRng {
        SimRng::from_seed(21)
    }

    fn random_req(rng: &mut SimRng, rows: usize, cols: usize) -> RequestMatrix {
        let masks: Vec<u32> = (0..rows)
            .map(|_| rng.next_u32() & ((1u32 << cols) - 1))
            .collect();
        RequestMatrix::from_rows(masks, cols)
    }

    #[test]
    fn pim1_produces_valid_matchings() {
        let mut r = rng();
        let mut pim = PimArbiter::pim1();
        for _ in 0..100 {
            let req = random_req(&mut r, 16, 7);
            let m = pim.arbitrate(&req, &mut r);
            assert!(m.is_valid_for(&req));
        }
    }

    #[test]
    fn converged_pim_is_usually_maximal() {
        // With log2(N) iterations PIM converges "usually" — we allow a
        // small failure rate but most outcomes must be maximal.
        let mut r = rng();
        let mut pim = PimArbiter::converged(16);
        assert_eq!(pim.iterations(), 4);
        let mut maximal = 0;
        let trials = 200;
        for _ in 0..trials {
            let req = random_req(&mut r, 16, 7);
            let m = pim.arbitrate(&req, &mut r);
            assert!(m.is_valid_for(&req));
            if m.is_maximal_for(&req) {
                maximal += 1;
            }
        }
        assert!(maximal > trials * 9 / 10, "only {maximal}/{trials} maximal");
    }

    #[test]
    fn more_iterations_never_hurt_on_average() {
        let mut r1 = SimRng::from_seed(5);
        let mut r2 = SimRng::from_seed(5);
        let mut gen = SimRng::from_seed(6);
        let mut pim1 = PimArbiter::pim1();
        let mut pim4 = PimArbiter::new(4);
        let (mut sum1, mut sum4) = (0usize, 0usize);
        for _ in 0..300 {
            let req = random_req(&mut gen, 16, 7);
            sum1 += pim1.arbitrate(&req, &mut r1).cardinality();
            sum4 += pim4.arbitrate(&req, &mut r2).cardinality();
        }
        assert!(
            sum4 > sum1,
            "PIM4 ({sum4}) should out-match PIM1 ({sum1}) in aggregate"
        );
    }

    #[test]
    fn never_exceeds_mcm() {
        let mut r = rng();
        let mut pim = PimArbiter::new(4);
        for _ in 0..100 {
            let req = random_req(&mut r, 12, 7);
            let upper = mcm::maximum_matching(&req).cardinality();
            let m = pim.arbitrate(&req, &mut r);
            assert!(m.cardinality() <= upper);
        }
    }

    #[test]
    fn single_contender_always_matched() {
        let req = RequestMatrix::from_rows(vec![0b100], 3);
        let m = PimArbiter::pim1().arbitrate(&req, &mut rng());
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.output_of(0), Some(2));
    }

    #[test]
    fn collision_grants_exactly_one() {
        // Four inputs all requesting only output 0: PIM1's grant step
        // resolves the collision at the output arbiter.
        let req = RequestMatrix::from_rows(vec![1, 1, 1, 1], 2);
        let m = PimArbiter::pim1().arbitrate(&req, &mut rng());
        assert_eq!(m.cardinality(), 1);
    }

    #[test]
    fn empty_requests() {
        let req = RequestMatrix::new(4, 4);
        let m = PimArbiter::new(3).arbitrate(&req, &mut rng());
        assert_eq!(m.cardinality(), 0);
    }

    #[test]
    fn converged_iteration_counts() {
        assert_eq!(PimArbiter::converged(16).iterations(), 4);
        assert_eq!(PimArbiter::converged(8).iterations(), 3);
        assert_eq!(PimArbiter::converged(2).iterations(), 1);
        assert_eq!(PimArbiter::converged(1).iterations(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = PimArbiter::new(0);
    }
}
