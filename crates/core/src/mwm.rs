//! Exact maximum-weight matching — the optimality oracle.
//!
//! [`maximum_weight_matching`] solves the assignment problem on the
//! weighted request matrix exactly, via the Hungarian algorithm in its
//! O(n³) shortest-augmenting-path form with dual potentials. At the
//! router's dimensions (≤ 32 rows, 7 outputs — padded to a 32×32 square
//! at worst) a solve is microseconds, which is fine for what it is used
//! for and nothing else: an **oracle curve**. No timed simulation path
//! ever schedules with it; fig08's matching-quality table and the
//! `fig_weighted` bench run it *beside* the hardware-feasible arbiters to
//! measure how far below the optimum they sit (algorithm weight / MWM
//! weight), exactly as [`crate::mcm`] provides the cardinality upper
//! bound.
//!
//! The rectangular request matrix is padded to a square with zero-weight
//! dummy edges; since real weights are non-negative, a maximum-weight
//! perfect matching on the padded square restricted to genuine requests
//! is a maximum-weight matching of the original bipartite graph. Padding
//! pairs and zero-weight non-requested pairs are dropped from the
//! returned [`Matching`], so grants ⊆ requests always holds.
//!
//! [`brute_force_max_weight`] enumerates every matching — exponential,
//! test-only — and anchors the Hungarian implementation exhaustively on
//! small matrices (see `tests/weighted_properties.rs`).

use crate::arbiter::Arbiter;
use crate::matching::Matching;
use crate::matrix::{RequestMatrix, WeightMatrix, MAX_DIM};

const INF: i64 = i64::MAX / 2;

/// An exact maximum-weight matching of `req` under the weight plane `w`:
/// no matching within the request bitmask has a larger total weight.
///
/// Deterministic; among equally heavy optima the tie is broken by the
/// algorithm's fixed row order (no RNG draw).
///
/// # Panics
///
/// Panics if the weight plane's shape differs from the request matrix's.
pub fn maximum_weight_matching(req: &RequestMatrix, w: &WeightMatrix) -> Matching {
    assert_eq!(req.rows(), w.rows(), "weight rows mismatch");
    assert_eq!(req.cols(), w.cols(), "weight cols mismatch");
    let rows = req.rows();
    let cols = req.cols();
    let n = rows.max(cols);

    // Minimization form: cost = -weight on requested cells, 0 on padding
    // and non-requested cells (equivalent to weight 0 there).
    let cost = |i: usize, j: usize| -> i64 {
        if i < rows && j < cols && req.requested(i, j) {
            -(w.weight(i, j) as i64)
        } else {
            0
        }
    };

    // Hungarian algorithm, shortest-augmenting-path formulation with
    // potentials (1-indexed; index 0 is the virtual source). All state on
    // the stack — MAX_DIM is 32, so n+1 ≤ 33.
    let mut u = [0i64; MAX_DIM + 1];
    let mut v = [0i64; MAX_DIM + 1];
    let mut p = [0usize; MAX_DIM + 1]; // p[j] = row matched to column j
    let mut way = [0usize; MAX_DIM + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = [INF; MAX_DIM + 1];
        let mut used = [false; MAX_DIM + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut m = Matching::empty(rows, cols);
    for (j, &i) in p.iter().enumerate().take(n + 1).skip(1) {
        if i >= 1 && i <= rows && j <= cols && req.requested(i - 1, j - 1) {
            m.grant(i - 1, j - 1);
        }
    }
    m
}

/// The brute-force maximum matching weight: enumerates every matching of
/// `req` recursively. Exponential — the exhaustive test anchor for
/// [`maximum_weight_matching`], never a simulation path.
///
/// # Panics
///
/// Panics if the weight plane's shape differs from the request matrix's.
pub fn brute_force_max_weight(req: &RequestMatrix, w: &WeightMatrix) -> u64 {
    assert_eq!(req.rows(), w.rows(), "weight rows mismatch");
    assert_eq!(req.cols(), w.cols(), "weight cols mismatch");
    fn go(req: &RequestMatrix, w: &WeightMatrix, row: usize, used_cols: u32) -> u64 {
        if row == req.rows() {
            return 0;
        }
        // Leave this row unmatched…
        let mut best = go(req, w, row + 1, used_cols);
        // …or match it to any free requested column.
        let mut mask = req.row_mask(row) & !used_cols;
        while mask != 0 {
            let c = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            best = best.max(w.weight(row, c) as u64 + go(req, w, row + 1, used_cols | (1 << c)));
        }
        best
    }
    go(req, w, 0, 0)
}

/// The MWM oracle wrapped as an [`Arbiter`] so the standalone model can
/// tabulate it beside the real algorithms. When the input carries no
/// weight plane it degenerates to unit weights, i.e. a maximum-cardinality
/// matching chosen deterministically.
#[derive(Clone, Debug, Default)]
pub struct MwmArbiter;

impl MwmArbiter {
    /// A new oracle instance (stateless).
    pub fn new() -> Self {
        MwmArbiter
    }
}

impl Arbiter for MwmArbiter {
    fn name(&self) -> &str {
        "MWM"
    }

    fn arbitrate(
        &mut self,
        input: &crate::arbiter::ArbitrationInput,
        _rng: &mut simcore::SimRng,
    ) -> Matching {
        let req = &input.requests;
        match &input.weights {
            Some(w) => maximum_weight_matching(req, w),
            None => {
                let unit = WeightMatrix::unit(req.rows(), req.cols());
                maximum_weight_matching(req, &unit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcm;
    use simcore::SimRng;

    fn random_case(rng: &mut SimRng, rows: usize, cols: usize) -> (RequestMatrix, WeightMatrix) {
        let masks: Vec<u32> = (0..rows)
            .map(|_| rng.next_u32() & ((1u32 << cols) - 1))
            .collect();
        let req = RequestMatrix::from_rows(masks, cols);
        let mut w = WeightMatrix::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                w.set(r, c, 1 + rng.below(100) as u32);
            }
        }
        (req, w)
    }

    #[test]
    fn grants_stay_within_requests() {
        let mut rng = SimRng::from_seed(101);
        for _ in 0..200 {
            let (req, w) = random_case(&mut rng, 16, 7);
            let m = maximum_weight_matching(&req, &w);
            assert!(m.is_valid_for(&req));
        }
    }

    #[test]
    fn matches_brute_force_on_random_small_matrices() {
        let mut rng = SimRng::from_seed(102);
        for _ in 0..300 {
            let rows = 1 + rng.below(5);
            let cols = 1 + rng.below(5);
            let (req, w) = random_case(&mut rng, rows, cols);
            let m = maximum_weight_matching(&req, &w);
            assert_eq!(
                w.matching_weight(&m),
                brute_force_max_weight(&req, &w),
                "{rows}x{cols} {req:?}"
            );
        }
    }

    #[test]
    fn unit_weights_reach_maximum_cardinality() {
        // With all weights equal, maximum weight = maximum cardinality.
        let mut rng = SimRng::from_seed(103);
        for _ in 0..200 {
            let (req, _) = random_case(&mut rng, 16, 7);
            let unit = WeightMatrix::unit(16, 7);
            let m = maximum_weight_matching(&req, &unit);
            assert_eq!(
                m.cardinality(),
                mcm::maximum_matching(&req).cardinality(),
                "{req:?}"
            );
        }
    }

    #[test]
    fn rectangular_both_ways() {
        // Wide and tall matrices pad differently; both must stay exact.
        let mut rng = SimRng::from_seed(104);
        for (rows, cols) in [(2, 6), (6, 2), (1, 4), (4, 1)] {
            for _ in 0..100 {
                let (req, w) = random_case(&mut rng, rows, cols);
                let m = maximum_weight_matching(&req, &w);
                assert!(m.is_valid_for(&req));
                assert_eq!(w.matching_weight(&m), brute_force_max_weight(&req, &w));
            }
        }
    }

    #[test]
    fn empty_requests_empty_matching() {
        let req = RequestMatrix::new(4, 4);
        let w = WeightMatrix::unit(4, 4);
        assert_eq!(maximum_weight_matching(&req, &w).cardinality(), 0);
        assert_eq!(brute_force_max_weight(&req, &w), 0);
    }

    #[test]
    fn heavy_edge_displaces_a_blocking_light_one() {
        // Row 0's heavy option sits at col 0 — the only column row 1 can
        // use. A cardinality-maximal greedy that seats row 0 at col 0
        // first would strand weight; the optimum routes row 0 to its
        // lighter col 1 only if that pays, and here it does not:
        // 10 (row0@col0) beats 2 + 2.
        let req = RequestMatrix::from_rows(vec![0b11, 0b01], 2);
        let mut w = WeightMatrix::new(2, 2);
        w.set(0, 0, 10);
        w.set(0, 1, 2);
        w.set(1, 0, 2);
        let m = maximum_weight_matching(&req, &w);
        assert_eq!(w.matching_weight(&m), 10, "one heavy edge beats 2 + 2");
        assert_eq!(m.output_of(0), Some(0));
        // And with the heavy edge moved to col 1, both rows match.
        w.set(0, 0, 2);
        w.set(0, 1, 10);
        let m = maximum_weight_matching(&req, &w);
        assert_eq!(w.matching_weight(&m), 12, "10 + 2 beats a lone edge");
        assert_eq!(m.output_of(0), Some(1));
        assert_eq!(m.output_of(1), Some(0));
    }
}
