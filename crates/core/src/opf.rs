//! OPF — the naïve "oldest packet first" strawman of Figure 2.
//!
//! OPF has each input port blindly pick its oldest waiting packet and send
//! that nomination to the packet's output port, with no awareness of what
//! other inputs are doing. When several oldest packets target the same
//! output ("output port 3 can deliver only one packet"), all but one
//! collide and the cycle's throughput craters — the figure the paper opens
//! with to motivate smarter arbitration.
//!
//! OPF is SPAA's nomination rule with the dumbest possible adaptive-route
//! choice (none: the packet's first candidate) and a random output grant.
//! It exists for the Figure 2 demonstration and as a pedagogical baseline;
//! the paper does not plot it (SPAA is "more like OPF" but with LRS grants
//! and per-cycle re-nomination, which recover much of the loss).

use crate::matching::Matching;
use simcore::SimRng;

/// The OPF strawman arbiter.
#[derive(Clone, Debug)]
pub struct OpfArbiter {
    rows: usize,
    cols: usize,
}

impl OpfArbiter {
    /// Creates an OPF arbiter for a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or exceed 32.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && rows <= 32 && cols > 0 && cols <= 32);
        OpfArbiter { rows, cols }
    }

    /// Resolves oldest-packet nominations: every contended output grants a
    /// uniformly random nominator, everything else collides away.
    ///
    /// `oldest[row]` is the output wanted by the row's oldest packet.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or out-of-range outputs.
    pub fn arbitrate(&mut self, oldest: &[Option<u8>], rng: &mut SimRng) -> Matching {
        assert_eq!(oldest.len(), self.rows, "nomination width mismatch");
        let mut contenders = vec![0u32; self.cols];
        for (row, nom) in oldest.iter().enumerate() {
            if let Some(c) = nom {
                let c = *c as usize;
                assert!(c < self.cols, "output {c} out of range");
                contenders[c] |= 1 << row;
            }
        }
        let mut m = Matching::empty(self.rows, self.cols);
        for (c, &mask) in contenders.iter().enumerate() {
            if mask != 0 {
                m.grant(rng.pick_bit(mask) as usize, c);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_collision() {
        // Figure 2: all eight input ports' oldest packets target output 3.
        let oldest = vec![Some(3u8); 8];
        let mut opf = OpfArbiter::new(8, 7);
        let m = opf.arbitrate(&oldest, &mut SimRng::from_seed(1));
        assert_eq!(
            m.cardinality(),
            1,
            "OPF delivers one packet where MCM delivers 7"
        );
        assert_eq!(m.matched_cols(), 1 << 3);
    }

    #[test]
    fn disjoint_nominations_all_granted() {
        let oldest = vec![Some(0u8), Some(1), Some(2), None];
        let mut opf = OpfArbiter::new(4, 4);
        let m = opf.arbitrate(&oldest, &mut SimRng::from_seed(2));
        assert_eq!(m.cardinality(), 3);
    }

    #[test]
    fn random_winner_covers_all_contenders() {
        let oldest = vec![Some(0u8); 4];
        let mut opf = OpfArbiter::new(4, 2);
        let mut rng = SimRng::from_seed(3);
        let mut seen = 0u32;
        for _ in 0..100 {
            seen |= 1 << opf.arbitrate(&oldest, &mut rng).input_of(0).unwrap();
        }
        assert_eq!(seen, 0b1111, "every contender eventually wins");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_checked() {
        let mut opf = OpfArbiter::new(4, 4);
        let _ = opf.arbitrate(&[None; 2], &mut SimRng::from_seed(0));
    }
}
