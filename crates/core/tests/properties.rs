//! Property-based tests of the arbitration invariants listed in DESIGN.md.
//!
//! Every algorithm, on every reachable request state, must produce a valid
//! matching bounded by MCM's maximum; the maximal algorithms (MCM, WFA)
//! must leave no augmenting pair behind; and the single-nomination
//! algorithms must grant every uncontended nomination.
//!
//! Cases are generated from a deterministic [`SimRng`] stream per test
//! (the workspace carries no external property-testing dependency), so a
//! failure reproduces exactly from the test name alone.

use arbitration::arbiter::McmArbiter;
use arbitration::mcm::brute_force_max_cardinality;
use arbitration::prelude::*;
use simcore::SimRng;

const CASES: usize = 256;

/// A request matrix with random dimensions in `[1, max_rows] × [1, max_cols]`
/// and arbitrary cells.
fn random_matrix(rng: &mut SimRng, max_rows: usize, max_cols: usize) -> RequestMatrix {
    let rows = 1 + rng.below(max_rows);
    let cols = 1 + rng.below(max_cols);
    let masks = (0..rows)
        .map(|_| rng.next_u32() & ((1u32 << cols) - 1))
        .collect();
    RequestMatrix::from_rows(masks, cols)
}

/// A consistent (requests, nominations) pair: one pseudo-random requested
/// output nominated per non-empty row.
fn random_input(rng: &mut SimRng, max_rows: usize, max_cols: usize) -> ArbitrationInput {
    let req = random_matrix(rng, max_rows, max_cols);
    let noms = (0..req.rows())
        .map(|r| {
            let mask = req.row_mask(r);
            (mask != 0).then(|| rng.pick_bit(mask) as u8)
        })
        .collect();
    ArbitrationInput::new(req, noms)
}

#[test]
fn mcm_is_maximum_and_maximal() {
    let mut gen = SimRng::from_seed(0x6d63_6d31);
    for case in 0..CASES {
        let req = random_matrix(&mut gen, 10, 8);
        let m = mcm::maximum_matching(&req);
        assert!(m.is_valid_for(&req), "case {case}");
        assert!(m.is_maximal_for(&req), "case {case}");
        assert_eq!(
            m.cardinality(),
            brute_force_max_cardinality(&req),
            "case {case}"
        );
    }
}

#[test]
fn wfa_is_valid_maximal_and_bounded() {
    let mut gen = SimRng::from_seed(0x7766_6131);
    for case in 0..CASES {
        let req = random_matrix(&mut gen, 16, 7);
        let rotary = gen.chance(0.5);
        let rows = req.rows();
        let mut wfa = if rotary {
            // Use the low half of the rows as the "network" class.
            let mask = (1u32 << rows.div_ceil(2)) - 1;
            WfaArbiter::rotary(rows, req.cols(), mask)
        } else {
            WfaArbiter::base(rows, req.cols())
        };
        // Rotate the start pointer to an arbitrary phase.
        for _ in 0..gen.below(17) {
            let _ = wfa.arbitrate(&RequestMatrix::new(rows, req.cols()));
        }
        let m = wfa.arbitrate(&req);
        assert!(m.is_valid_for(&req), "case {case}");
        assert!(m.is_maximal_for(&req), "case {case}");
        assert!(
            m.cardinality() <= mcm::maximum_matching(&req).cardinality(),
            "case {case}"
        );
    }
}

#[test]
fn pim_is_valid_bounded_and_monotone_in_iterations() {
    let mut gen = SimRng::from_seed(0x7069_6d31);
    for case in 0..CASES {
        let req = random_matrix(&mut gen, 16, 7);
        let seed = gen.next_u64();
        let upper = mcm::maximum_matching(&req).cardinality();
        let mut last = 0usize;
        // The same seed gives each iteration count the same grant draws
        // for its first rounds, so cardinality is non-decreasing in k.
        for k in 1..=4usize {
            let mut rng = SimRng::from_seed(seed);
            let m = PimArbiter::new(k).arbitrate(&req, &mut rng);
            assert!(m.is_valid_for(&req), "case {case}");
            assert!(m.cardinality() <= upper, "case {case}");
            assert!(
                m.cardinality() >= last,
                "case {case}: PIM{} matched fewer ({}) than PIM{} ({})",
                k,
                m.cardinality(),
                k - 1,
                last
            );
            last = m.cardinality();
        }
    }
}

#[test]
fn spaa_grants_exactly_one_per_contended_output() {
    let mut gen = SimRng::from_seed(0x7370_6161);
    for case in 0..CASES {
        let input = random_input(&mut gen, 16, 7);
        let mut rng = SimRng::from_seed(gen.next_u64());
        let rows = input.requests.rows();
        let cols = input.requests.cols();
        let mut spaa = SpaaArbiter::base(rows, cols);
        let m = spaa.grant(&input.nominations, &mut rng);
        assert!(m.is_valid_for(&input.requests), "case {case}");
        // Cardinality is exactly the number of distinct nominated outputs.
        let mut outputs = 0u32;
        for nom in input.nominations.iter().flatten() {
            outputs |= 1 << *nom;
        }
        assert_eq!(
            m.cardinality(),
            outputs.count_ones() as usize,
            "case {case}"
        );
        // Every uncontended nomination is granted.
        for (r, nom) in input.nominations.iter().enumerate() {
            if let Some(c) = nom {
                let contenders = input
                    .nominations
                    .iter()
                    .filter(|n| n.as_ref() == Some(c))
                    .count();
                if contenders == 1 {
                    assert_eq!(m.output_of(r), Some(*c as usize), "case {case}");
                }
            }
        }
    }
}

#[test]
fn every_algorithm_is_valid_and_bounded_by_mcm() {
    let mut gen = SimRng::from_seed(0x616c_6c31);
    for case in 0..CASES {
        let input = random_input(&mut gen, 16, 7);
        let rows = input.requests.rows();
        let cols = input.requests.cols();
        let mut rng = SimRng::from_seed(gen.next_u64());
        let upper = mcm::maximum_matching(&input.requests).cardinality();
        let mut algos: Vec<Box<dyn Arbiter>> = vec![
            Box::new(McmArbiter::new()),
            Box::new(PimArbiter::pim1()),
            Box::new(PimArbiter::converged(rows)),
            Box::new(WfaArbiter::base(rows, cols)),
            Box::new(SpaaArbiter::base(rows, cols)),
            Box::new(OpfArbiter::new(rows, cols)),
        ];
        for algo in algos.iter_mut() {
            let m = algo.arbitrate(&input, &mut rng);
            assert!(
                m.is_valid_for(&input.requests),
                "case {case}: {} invalid",
                algo.name()
            );
            assert!(
                m.cardinality() <= upper,
                "case {case}: {} beat MCM ({} > {})",
                algo.name(),
                m.cardinality(),
                upper
            );
        }
    }
}

#[test]
fn selector_always_picks_a_requester() {
    use arbitration::policy::{RotaryMode, SelectionPolicy, Selector};
    use arbitration::ports::NETWORK_ROW_MASK;
    let mut gen = SimRng::from_seed(0x7365_6c31);
    for case in 0..CASES {
        let pool = 1 + gen.below((1 << 16) - 1) as u32;
        let policy = [
            SelectionPolicy::Random,
            SelectionPolicy::RoundRobin,
            SelectionPolicy::LeastRecentlySelected,
        ][gen.below(3)];
        let rotary = gen.chance(0.5);
        let mode = if rotary {
            RotaryMode::On
        } else {
            RotaryMode::Off
        };
        let mut sel = Selector::new(policy, mode, NETWORK_ROW_MASK, 16);
        let mut rng = SimRng::from_seed(gen.next_u64());
        for _ in 0..8 {
            let row = sel.select(pool, &mut rng);
            assert!(pool & (1 << row) != 0, "case {case}: non-requester {row}");
            if rotary && pool & NETWORK_ROW_MASK != 0 {
                assert!(
                    NETWORK_ROW_MASK & (1 << row) != 0,
                    "case {case}: rotary ignored a network requester"
                );
            }
        }
    }
}

#[test]
fn matching_row_col_uniqueness_is_structural() {
    let mut gen = SimRng::from_seed(0x756e_6971);
    for case in 0..CASES {
        // Whatever PIM does, no row or column ever appears twice.
        let req = random_matrix(&mut gen, 16, 7);
        let mut rng = SimRng::from_seed(gen.next_u64());
        let m = PimArbiter::converged(req.rows()).arbitrate(&req, &mut rng);
        let mut rows_seen = 0u32;
        let mut cols_seen = 0u32;
        for (r, c) in m.pairs() {
            assert!(rows_seen & (1 << r) == 0, "case {case}");
            assert!(cols_seen & (1 << c) == 0, "case {case}");
            rows_seen |= 1 << r;
            cols_seen |= 1 << c;
        }
    }
}
