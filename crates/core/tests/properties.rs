//! Property-based tests of the arbitration invariants listed in DESIGN.md.
//!
//! Every algorithm, on every reachable request state, must produce a valid
//! matching bounded by MCM's maximum; the maximal algorithms (MCM, WFA)
//! must leave no augmenting pair behind; and the single-nomination
//! algorithms must grant every uncontended nomination.

use arbitration::prelude::*;
use arbitration::arbiter::McmArbiter;
use arbitration::mcm::brute_force_max_cardinality;
use proptest::prelude::*;
use simcore::SimRng;

/// Strategy: a request matrix of bounded size with arbitrary cells.
fn request_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = RequestMatrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(0u32..(1u32 << cols), rows)
            .prop_map(move |masks| RequestMatrix::from_rows(masks, cols))
    })
}

/// Strategy: consistent (requests, nominations) pair plus an RNG seed.
fn arbitration_input(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = (ArbitrationInput, u64)> {
    (request_matrix(max_rows, max_cols), any::<u64>(), any::<u64>()).prop_map(
        |(req, pick_seed, rng_seed)| {
            // Nominate a pseudo-random requested output per row.
            let mut pick = SimRng::from_seed(pick_seed);
            let noms = (0..req.rows())
                .map(|r| {
                    let mask = req.row_mask(r);
                    (mask != 0).then(|| pick.pick_bit(mask) as u8)
                })
                .collect();
            (ArbitrationInput::new(req, noms), rng_seed)
        },
    )
}

proptest! {
    #[test]
    fn mcm_is_maximum_and_maximal(req in request_matrix(10, 8)) {
        let m = mcm::maximum_matching(&req);
        prop_assert!(m.is_valid_for(&req));
        prop_assert!(m.is_maximal_for(&req));
        prop_assert_eq!(m.cardinality(), brute_force_max_cardinality(&req));
    }

    #[test]
    fn wfa_is_valid_maximal_and_bounded(
        req in request_matrix(16, 7),
        seed in any::<u64>(),
        rotary in any::<bool>(),
    ) {
        let rows = req.rows();
        let mut wfa = if rotary {
            // Use the low half of the rows as the "network" class.
            let mask = (1u32 << rows.div_ceil(2)) - 1;
            WfaArbiter::rotary(rows, req.cols(), mask)
        } else {
            WfaArbiter::base(rows, req.cols())
        };
        // Rotate the start pointer to an arbitrary phase.
        for _ in 0..(seed % 17) {
            let _ = wfa.arbitrate(&RequestMatrix::new(rows, req.cols()));
        }
        let m = wfa.arbitrate(&req);
        prop_assert!(m.is_valid_for(&req));
        prop_assert!(m.is_maximal_for(&req));
        prop_assert!(m.cardinality() <= mcm::maximum_matching(&req).cardinality());
    }

    #[test]
    fn pim_is_valid_bounded_and_monotone_in_iterations(
        req in request_matrix(16, 7),
        seed in any::<u64>(),
    ) {
        let upper = mcm::maximum_matching(&req).cardinality();
        let mut last = 0usize;
        // The same seed gives each iteration count the same grant draws
        // for its first rounds, so cardinality is non-decreasing in k.
        for k in 1..=4usize {
            let mut rng = SimRng::from_seed(seed);
            let m = PimArbiter::new(k).arbitrate(&req, &mut rng);
            prop_assert!(m.is_valid_for(&req));
            prop_assert!(m.cardinality() <= upper);
            prop_assert!(
                m.cardinality() >= last,
                "PIM{} matched fewer ({}) than PIM{} ({})",
                k, m.cardinality(), k - 1, last
            );
            last = m.cardinality();
        }
    }

    #[test]
    fn spaa_grants_exactly_one_per_contended_output(
        (input, seed) in arbitration_input(16, 7),
    ) {
        let mut rng = SimRng::from_seed(seed);
        let rows = input.requests.rows();
        let cols = input.requests.cols();
        let mut spaa = SpaaArbiter::base(rows, cols);
        let m = spaa.grant(&input.nominations, &mut rng);
        prop_assert!(m.is_valid_for(&input.requests));
        // Cardinality is exactly the number of distinct nominated outputs.
        let mut outputs = 0u32;
        for nom in input.nominations.iter().flatten() {
            outputs |= 1 << *nom;
        }
        prop_assert_eq!(m.cardinality(), outputs.count_ones() as usize);
        // Every uncontended nomination is granted.
        for (r, nom) in input.nominations.iter().enumerate() {
            if let Some(c) = nom {
                let contenders = input
                    .nominations
                    .iter()
                    .filter(|n| n.as_ref() == Some(c))
                    .count();
                if contenders == 1 {
                    prop_assert_eq!(m.output_of(r), Some(*c as usize));
                }
            }
        }
    }

    #[test]
    fn every_algorithm_is_valid_and_bounded_by_mcm(
        (input, seed) in arbitration_input(16, 7),
    ) {
        let rows = input.requests.rows();
        let cols = input.requests.cols();
        let mut rng = SimRng::from_seed(seed);
        let upper = mcm::maximum_matching(&input.requests).cardinality();
        let mut algos: Vec<Box<dyn Arbiter>> = vec![
            Box::new(McmArbiter::new()),
            Box::new(PimArbiter::pim1()),
            Box::new(PimArbiter::converged(rows)),
            Box::new(WfaArbiter::base(rows, cols)),
            Box::new(SpaaArbiter::base(rows, cols)),
            Box::new(OpfArbiter::new(rows, cols)),
        ];
        for algo in algos.iter_mut() {
            let m = algo.arbitrate(&input, &mut rng);
            prop_assert!(m.is_valid_for(&input.requests), "{} invalid", algo.name());
            prop_assert!(
                m.cardinality() <= upper,
                "{} beat MCM ({} > {})", algo.name(), m.cardinality(), upper
            );
        }
    }

    #[test]
    fn selector_always_picks_a_requester(
        pool in 1u32..(1 << 16),
        seed in any::<u64>(),
        policy_idx in 0usize..3,
        rotary in any::<bool>(),
    ) {
        use arbitration::policy::{RotaryMode, SelectionPolicy, Selector};
        use arbitration::ports::NETWORK_ROW_MASK;
        let policy = [
            SelectionPolicy::Random,
            SelectionPolicy::RoundRobin,
            SelectionPolicy::LeastRecentlySelected,
        ][policy_idx];
        let mode = if rotary { RotaryMode::On } else { RotaryMode::Off };
        let mut sel = Selector::new(policy, mode, NETWORK_ROW_MASK, 16);
        let mut rng = SimRng::from_seed(seed);
        for _ in 0..8 {
            let row = sel.select(pool, &mut rng);
            prop_assert!(pool & (1 << row) != 0, "selected non-requester {row}");
            if rotary && pool & NETWORK_ROW_MASK != 0 {
                prop_assert!(
                    NETWORK_ROW_MASK & (1 << row) != 0,
                    "rotary ignored a network requester"
                );
            }
        }
    }

    #[test]
    fn matching_row_col_uniqueness_is_structural(
        req in request_matrix(16, 7),
        seed in any::<u64>(),
    ) {
        // Whatever PIM does, no row or column ever appears twice.
        let mut rng = SimRng::from_seed(seed);
        let m = PimArbiter::converged(req.rows()).arbitrate(&req, &mut rng);
        let mut rows_seen = 0u32;
        let mut cols_seen = 0u32;
        for (r, c) in m.pairs() {
            prop_assert!(rows_seen & (1 << r) == 0);
            prop_assert!(cols_seen & (1 << c) == 0);
            rows_seen |= 1 << r;
            cols_seen |= 1 << c;
        }
    }
}
