//! Matching invariants for every `Arbiter` implementation.
//!
//! Whatever the algorithm — SPAA, PIM, PIM1, WFA, MCM, OPF, iSLIP(1–3),
//! the plain round-robin matcher, the weighted iterative kernels
//! (iLQF/iOCF) or the MWM oracle — one arbitration pass over a
//! request state reachable in the 21364 must return a `Matching` that:
//!
//! 1. grants only (row, output) pairs that are **both** requested and
//!    wired in the Figure 5 connection matrix (the request matrices fed
//!    to arbiters are pre-masked by the connection matrix, so a grant
//!    outside `requests ∩ connections` is a request-fabrication bug);
//! 2. has at most one grant per row and at most one per column (one
//!    packet per read port, one packet per output port);
//! 3. never grants a row whose request set is empty.
//!
//! Cases are generated from a deterministic `SimRng` stream (the
//! workspace carries no property-testing dependency), so any failure
//! reproduces exactly from the test alone.

use arbitration::arbiter::{Arbiter, ArbitrationInput, McmArbiter};
use arbitration::prelude::*;
use simcore::SimRng;

const CASES: usize = 200;

fn all_arbiters(rows: usize, cols: usize) -> Vec<Box<dyn Arbiter>> {
    vec![
        Box::new(SpaaArbiter::base(rows, cols)),
        Box::new(PimArbiter::converged(rows)),
        Box::new(PimArbiter::pim1()),
        Box::new(WfaArbiter::base(rows, cols)),
        Box::new(McmArbiter::new()),
        Box::new(McmArbiter::deterministic()),
        Box::new(OpfArbiter::new(rows, cols)),
        Box::new(IslipArbiter::islip(rows, cols, 1)),
        Box::new(IslipArbiter::islip(rows, cols, 2)),
        Box::new(IslipArbiter::islip(rows, cols, 3)),
        Box::new(IslipArbiter::round_robin_matcher(rows, cols)),
        Box::new(LqfArbiter::new(rows, cols, 1)),
        Box::new(LqfArbiter::new(rows, cols, 2)),
        Box::new(OcfArbiter::new(rows, cols, 1)),
        Box::new(MwmArbiter::new()),
    ]
}

/// A random request state over the real 21364 connection matrix: every
/// row mask is drawn arbitrarily, then masked by the row's wiring — the
/// view a router's entry table would actually present. Sparsity varies
/// per case so empty rows, single-request rows, and dense rows all
/// appear.
fn random_request_state(rng: &mut SimRng, conn: &ConnectionMatrix) -> ArbitrationInput {
    let rows = conn.rows();
    let cols = conn.cols();
    let density = rng.below(4); // 0: drop ~3/4 of bits … 3: keep all
    let masks: Vec<u32> = (0..rows)
        .map(|r| {
            let mut m = rng.next_u32() & conn.row_mask(r);
            for _ in density..3 {
                m &= rng.next_u32();
            }
            m
        })
        .collect();
    let noms = masks
        .iter()
        .map(|&m| (m != 0).then(|| rng.pick_bit(m) as u8))
        .collect();
    // A random weight plane so the weighted arbiters (iLQF/iOCF/MWM) are
    // exercised with genuine weights, not the unit fallback. The
    // unweighted arbiters never look at it.
    let mut weights = WeightMatrix::new(rows, cols);
    for (r, &m) in masks.iter().enumerate() {
        let mut bits = m;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            weights.set(r, c, 1 + rng.below(64) as u32);
        }
    }
    ArbitrationInput::new(RequestMatrix::from_rows(masks, cols), noms).with_weights(weights)
}

#[test]
fn every_arbiter_grants_within_requests_and_connections() {
    let conn = ConnectionMatrix::alpha_21364();
    let mut gen = SimRng::from_seed(0x696e_7661 ^ 0x6172_6269);
    let mut rng = SimRng::from_seed(0x7265_7175);
    let mut arbiters = all_arbiters(conn.rows(), conn.cols());
    for case in 0..CASES {
        let input = random_request_state(&mut gen, &conn);
        assert!(input.validate(), "case {case}: inconsistent input");
        for arb in arbiters.iter_mut() {
            let m = arb.arbitrate(&input, &mut rng);
            for (r, c) in m.pairs() {
                assert!(
                    input.requests.requested(r, c),
                    "{} case {case}: granted ({r},{c}) without a request",
                    arb.name()
                );
                assert!(
                    conn.connected(r, c),
                    "{} case {case}: granted ({r},{c}) outside the connection matrix",
                    arb.name()
                );
            }
        }
    }
}

#[test]
fn every_arbiter_grants_at_most_one_per_row_and_column() {
    let conn = ConnectionMatrix::alpha_21364();
    let mut gen = SimRng::from_seed(0x726f_7763);
    let mut rng = SimRng::from_seed(0x636f_6c75);
    let mut arbiters = all_arbiters(conn.rows(), conn.cols());
    for case in 0..CASES {
        let input = random_request_state(&mut gen, &conn);
        for arb in arbiters.iter_mut() {
            let m = arb.arbitrate(&input, &mut rng);
            // Recount directly from the pair list rather than trusting
            // the Matching accessors: the invariant under test is the
            // arbiter's output, not the container's bookkeeping.
            let mut row_seen = 0u32;
            let mut col_seen = 0u32;
            for (r, c) in m.pairs() {
                assert_eq!(
                    row_seen & (1 << r),
                    0,
                    "{} case {case}: row {r} granted twice",
                    arb.name()
                );
                assert_eq!(
                    col_seen & (1 << c),
                    0,
                    "{} case {case}: column {c} granted twice",
                    arb.name()
                );
                row_seen |= 1 << r;
                col_seen |= 1 << c;
            }
            assert_eq!(m.cardinality() as u32, row_seen.count_ones());
        }
    }
}

#[test]
fn no_arbiter_grants_an_empty_row() {
    let conn = ConnectionMatrix::alpha_21364();
    let mut gen = SimRng::from_seed(0x656d_7074);
    let mut rng = SimRng::from_seed(0x7a65_726f);
    let mut arbiters = all_arbiters(conn.rows(), conn.cols());
    let mut empty_rows_seen = 0usize;
    for case in 0..CASES {
        let input = random_request_state(&mut gen, &conn);
        for r in 0..input.requests.rows() {
            if input.requests.row_mask(r) == 0 {
                empty_rows_seen += 1;
            }
        }
        for arb in arbiters.iter_mut() {
            let m = arb.arbitrate(&input, &mut rng);
            for r in 0..input.requests.rows() {
                if input.requests.row_mask(r) == 0 {
                    assert_eq!(
                        m.output_of(r),
                        None,
                        "{} case {case}: granted empty row {r}",
                        arb.name()
                    );
                }
            }
        }
    }
    // The generator must actually exercise the invariant.
    assert!(
        empty_rows_seen > CASES,
        "only {empty_rows_seen} empty rows generated across {CASES} cases"
    );
}

#[test]
fn all_ones_request_state_is_handled_by_every_arbiter() {
    // The degenerate dense corner: every wired cell requested.
    let conn = ConnectionMatrix::alpha_21364();
    let masks: Vec<u32> = (0..conn.rows()).map(|r| conn.row_mask(r)).collect();
    let noms = masks
        .iter()
        .map(|&m| Some(m.trailing_zeros() as u8))
        .collect();
    let input = ArbitrationInput::new(RequestMatrix::from_rows(masks, conn.cols()), noms);
    let mut rng = SimRng::from_seed(0xdead);
    for arb in all_arbiters(conn.rows(), conn.cols()).iter_mut() {
        let m = arb.arbitrate(&input, &mut rng);
        assert!(m.is_valid_for(&input.requests), "{}", arb.name());
        assert!(
            m.cardinality() >= 1,
            "{} matched nothing on a full matrix",
            arb.name()
        );
    }
}
