//! Properties of the weighted matching substrate.
//!
//! Two anchors hold the whole weighted extension together:
//!
//! 1. **Dominance** — the Hungarian oracle's matching weight is an upper
//!    bound on the matching weight achieved by *every* `Arbiter`
//!    implementation, weighted or not, on the same weighted request
//!    matrix. If any arbiter ever beat the "exact" oracle, the oracle
//!    would not be exact and every optimality-gap column in the figures
//!    would be lying.
//! 2. **Exactness** — on every request matrix small enough to enumerate
//!    (all shapes up to 4×4, all 2^(rows·cols) request bitmasks), the
//!    Hungarian result equals brute-force enumeration exactly.
//!
//! Cases come from a deterministic `SimRng` stream (the workspace carries
//! no property-testing dependency), so failures reproduce from the test
//! alone.

use arbitration::arbiter::{Arbiter, ArbitrationInput, McmArbiter};
use arbitration::prelude::*;
use simcore::SimRng;

fn all_arbiters(rows: usize, cols: usize) -> Vec<Box<dyn Arbiter>> {
    vec![
        Box::new(SpaaArbiter::base(rows, cols)),
        Box::new(PimArbiter::converged(rows)),
        Box::new(PimArbiter::pim1()),
        Box::new(WfaArbiter::base(rows, cols)),
        Box::new(McmArbiter::new()),
        Box::new(McmArbiter::deterministic()),
        Box::new(OpfArbiter::new(rows, cols)),
        Box::new(IslipArbiter::islip(rows, cols, 1)),
        Box::new(IslipArbiter::islip(rows, cols, 3)),
        Box::new(IslipArbiter::round_robin_matcher(rows, cols)),
        Box::new(LqfArbiter::new(rows, cols, 1)),
        Box::new(LqfArbiter::new(rows, cols, 2)),
        Box::new(LqfArbiter::new(rows, cols, 3)),
        Box::new(OcfArbiter::new(rows, cols, 1)),
        Box::new(OcfArbiter::new(rows, cols, 2)),
    ]
}

/// A random weighted request state over the 21364 connection matrix,
/// mirroring the generator in `matching_invariants.rs`: arbitrary masks
/// clipped to the wiring, varying sparsity, weights in 1..=64 on every
/// requested cell.
fn random_weighted_state(rng: &mut SimRng, conn: &ConnectionMatrix) -> ArbitrationInput {
    let rows = conn.rows();
    let cols = conn.cols();
    let density = rng.below(4);
    let masks: Vec<u32> = (0..rows)
        .map(|r| {
            let mut m = rng.next_u32() & conn.row_mask(r);
            for _ in density..3 {
                m &= rng.next_u32();
            }
            m
        })
        .collect();
    let noms = masks
        .iter()
        .map(|&m| (m != 0).then(|| rng.pick_bit(m) as u8))
        .collect();
    let mut weights = WeightMatrix::new(rows, cols);
    for (r, &m) in masks.iter().enumerate() {
        let mut bits = m;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            weights.set(r, c, 1 + rng.below(64) as u32);
        }
    }
    ArbitrationInput::new(RequestMatrix::from_rows(masks, cols), noms).with_weights(weights)
}

#[test]
fn mwm_weight_dominates_every_arbiter() {
    let conn = ConnectionMatrix::alpha_21364();
    let mut gen = SimRng::from_seed(0x6d77_6d64); // "mwmd"
    let mut rng = SimRng::from_seed(0x6f6d_696e);
    let mut arbiters = all_arbiters(conn.rows(), conn.cols());
    for case in 0..200 {
        let input = random_weighted_state(&mut gen, &conn);
        let w = input.weights.as_ref().expect("generator attaches weights");
        let oracle = mwm::maximum_weight_matching(&input.requests, w);
        let bound = w.matching_weight(&oracle);
        for arb in arbiters.iter_mut() {
            let m = arb.arbitrate(&input, &mut rng);
            let achieved = w.matching_weight(&m);
            assert!(
                achieved <= bound,
                "{} case {case}: weight {achieved} exceeds the MWM bound {bound}",
                arb.name()
            );
        }
    }
}

#[test]
fn mwm_matches_brute_force_exhaustively_up_to_4x4() {
    // Every shape up to 4×4 and every one of the 2^(rows·cols) request
    // bitmasks, each with a fresh seeded random weight plane. 4·4 → 65536
    // masks at the largest shape; the whole sweep is ~90k solves.
    let mut rng = SimRng::from_seed(0x6578_6163); // "exac"
    for rows in 1..=4usize {
        for cols in 1..=4usize {
            let cells = rows * cols;
            for pattern in 0u32..(1 << cells) {
                let masks: Vec<u32> = (0..rows)
                    .map(|r| (pattern >> (r * cols)) & ((1 << cols) - 1))
                    .collect();
                let req = RequestMatrix::from_rows(masks, cols);
                let mut w = WeightMatrix::new(rows, cols);
                for r in 0..rows {
                    for c in 0..cols {
                        if req.requested(r, c) {
                            w.set(r, c, 1 + rng.below(50) as u32);
                        }
                    }
                }
                let m = mwm::maximum_weight_matching(&req, &w);
                assert!(m.is_valid_for(&req), "{rows}x{cols} pattern {pattern:b}");
                assert_eq!(
                    w.matching_weight(&m),
                    mwm::brute_force_max_weight(&req, &w),
                    "{rows}x{cols} pattern {pattern:b}"
                );
            }
        }
    }
}

#[test]
fn weighted_arbiters_validate_against_matching_contract() {
    // The weighted arbiters' grants obey the same row/column exclusivity
    // and request-subset contract as the boolean family, checked through
    // `Matching::is_valid_for` on denser-than-usual states.
    let conn = ConnectionMatrix::alpha_21364();
    let mut gen = SimRng::from_seed(0x7765_6967);
    let mut rng = SimRng::from_seed(0x6874_6564);
    let mut arbiters: Vec<Box<dyn Arbiter>> = vec![
        Box::new(LqfArbiter::new(conn.rows(), conn.cols(), 1)),
        Box::new(LqfArbiter::new(conn.rows(), conn.cols(), 2)),
        Box::new(OcfArbiter::new(conn.rows(), conn.cols(), 1)),
        Box::new(MwmArbiter::new()),
    ];
    for case in 0..200 {
        let input = random_weighted_state(&mut gen, &conn);
        for arb in arbiters.iter_mut() {
            let m = arb.arbitrate(&input, &mut rng);
            assert!(
                m.is_valid_for(&input.requests),
                "{} case {case}",
                arb.name()
            );
        }
    }
}
